/**
 * @file
 * Unit tests for every convergent-scheduling pass (Section 4),
 * exercised on small hand-built graphs through the registry.
 */

#include <gtest/gtest.h>

#include "convergent/pass_registry.hh"
#include "ir/graph_algorithms.hh"
#include "ir/graph_builder.hh"
#include "machine/clustered_vliw.hh"
#include "machine/raw_machine.hh"
#include "support/rng.hh"

namespace csched {
namespace {

/** Fixture bundling a graph, machine, matrix, and pass context. */
class PassTest : public ::testing::Test
{
  protected:
    void
    init(DependenceGraph graph, int num_clusters)
    {
        graph_ = std::make_unique<DependenceGraph>(std::move(graph));
        machine_ = std::make_unique<ClusteredVliwMachine>(num_clusters);
        weights_ = std::make_unique<PreferenceMatrix>(
            graph_->numInstructions(), graph_->criticalPathLength(),
            num_clusters);
        rng_ = std::make_unique<Rng>(1);
    }

    void
    runPass(const std::string &name)
    {
        PassContext ctx{*graph_, *machine_, *weights_, params_, *rng_};
        makePassByName(name)->run(ctx);
    }

    std::unique_ptr<DependenceGraph> graph_;
    std::unique_ptr<ClusteredVliwMachine> machine_;
    std::unique_ptr<PreferenceMatrix> weights_;
    PassParams params_;
    std::unique_ptr<Rng> rng_;
};

TEST_F(PassTest, InitTimeZeroesInfeasibleSlots)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IAdd);
    const InstrId b = builder.op(Opcode::IAdd, {a});
    const InstrId c = builder.op(Opcode::IAdd, {b});
    init(builder.build(), 2);

    runPass("INITTIME");
    // CPL = 3; each instruction is pinned to exactly its level slot.
    for (int t = 0; t < 3; ++t) {
        EXPECT_EQ(weights_->timeMarginal(a, t) > 0, t == 0);
        EXPECT_EQ(weights_->timeMarginal(b, t) > 0, t == 1);
        EXPECT_EQ(weights_->timeMarginal(c, t) > 0, t == 2);
    }
    EXPECT_EQ(weights_->preferredTime(b), 1);
}

TEST_F(PassTest, InitTimeLeavesSlackWindowsOpen)
{
    GraphBuilder builder;
    const InstrId chain_a = builder.op(Opcode::IAdd);
    const InstrId chain_b = builder.op(Opcode::IAdd, {chain_a});
    builder.op(Opcode::IAdd, {chain_b});
    const InstrId loose = builder.op(Opcode::IAdd);  // full slack
    init(builder.build(), 2);

    runPass("INITTIME");
    int open_slots = 0;
    for (int t = 0; t < graph_->criticalPathLength(); ++t)
        open_slots += weights_->timeMarginal(loose, t) > 0 ? 1 : 0;
    EXPECT_EQ(open_slots, 3);  // may sit at t = 0, 1, or 2
}

TEST_F(PassTest, NoiseBreaksTiesDeterministically)
{
    GraphBuilder builder;
    for (int k = 0; k < 8; ++k)
        builder.op(Opcode::IAdd);
    init(builder.build(), 4);

    runPass("NOISE");
    // Different instructions end up preferring different clusters.
    std::vector<int> seen(4, 0);
    for (InstrId i = 0; i < 8; ++i)
        seen[weights_->preferredCluster(i)] += 1;
    int used = 0;
    for (int count : seen)
        used += count > 0 ? 1 : 0;
    EXPECT_GE(used, 2);

    // Same seed, same outcome.
    PreferenceMatrix other(8, graph_->criticalPathLength(), 4);
    Rng rng(1);
    PassContext ctx{*graph_, *machine_, other, params_, rng};
    makePassByName("NOISE")->run(ctx);
    for (InstrId i = 0; i < 8; ++i)
        EXPECT_EQ(other.preferredCluster(i),
                  weights_->preferredCluster(i));
}

TEST_F(PassTest, NoiseRespectsSquashedSlots)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IAdd);
    builder.op(Opcode::IAdd, {a});
    init(builder.build(), 2);
    runPass("INITTIME");
    runPass("NOISE");
    // Slot t=1 stays impossible for the root.
    EXPECT_NEAR(weights_->timeMarginal(a, 1), 0.0, 1e-12);
}

TEST_F(PassTest, PlaceBoostsHomeCluster)
{
    GraphBuilder builder;
    builder.load(1);
    builder.op(Opcode::IAdd);
    preplaceMemoryByBank(builder.graph(), 2);
    init(builder.build(), 2);

    runPass("PLACE");
    EXPECT_EQ(weights_->preferredCluster(0), 1);
    EXPECT_GT(weights_->confidence(0), 50.0);
    // Non-preplaced instruction untouched.
    EXPECT_NEAR(weights_->spaceMarginal(1, 0),
                weights_->spaceMarginal(1, 1), 1e-12);
}

TEST_F(PassTest, FirstPullsTowardsClusterZero)
{
    GraphBuilder builder;
    builder.op(Opcode::IAdd);
    init(builder.build(), 3);
    params_.firstFactor = 1.2;
    runPass("FIRST");
    EXPECT_EQ(weights_->preferredCluster(0), 0);
    EXPECT_GT(weights_->spaceMarginal(0, 0),
              weights_->spaceMarginal(0, 1));
}

TEST_F(PassTest, PathKeepsCriticalChainTogether)
{
    GraphBuilder builder;
    // Critical chain of multiplies plus a short side add.
    InstrId prev = builder.op(Opcode::FMul);
    const InstrId head = prev;
    for (int k = 0; k < 3; ++k)
        prev = builder.op(Opcode::FMul, {prev});
    builder.op(Opcode::IAdd);
    init(builder.build(), 4);

    runPass("PATH");
    const int chosen = weights_->preferredCluster(head);
    InstrId node = head;
    for (int k = 0; k < 3; ++k) {
        node = graph_->succs(node)[0];
        EXPECT_EQ(weights_->preferredCluster(node), chosen);
    }
}

TEST_F(PassTest, PathSplitsAtConflictingPreplacedHomes)
{
    GraphBuilder builder;
    const InstrId l0 = builder.load(0);
    const InstrId mid = builder.op(Opcode::FMul, {l0});
    const InstrId st = builder.store(1, mid);
    (void)st;
    preplaceMemoryByBank(builder.graph(), 2);
    init(builder.build(), 2);

    runPass("PATH");
    // The load's segment sticks to cluster 0, the store's to 1; the
    // middle instruction joins the leading segment.
    EXPECT_EQ(weights_->preferredCluster(l0), 0);
    EXPECT_EQ(weights_->preferredCluster(st), 1);
}

TEST_F(PassTest, CommAttractsTowardsNeighbourClusters)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IAdd);
    const InstrId b = builder.op(Opcode::IAdd);
    const InstrId join = builder.op(Opcode::IAdd, {a, b});
    init(builder.build(), 4);

    // Bias both producers to cluster 2, then let COMM pull the join.
    weights_->row(a).scaleCluster(2, 50.0);
    weights_->row(a).normalize();
    weights_->row(b).scaleCluster(2, 50.0);
    weights_->row(b).normalize();
    runPass("COMM");
    EXPECT_EQ(weights_->preferredCluster(join), 2);
}

TEST_F(PassTest, CommIgnoresIsolatedInstructions)
{
    GraphBuilder builder;
    builder.op(Opcode::IAdd);
    init(builder.build(), 2);
    // Disable the preferred-slot boost so only the neighbour
    // attraction (which must skip isolated instructions) remains.
    params_.commPreferredBoost = 1.0;
    const double before = weights_->spaceMarginal(0, 0);
    runPass("COMM");
    EXPECT_NEAR(weights_->spaceMarginal(0, 0), before, 1e-9);
}

TEST_F(PassTest, PlacePropFollowsDistance)
{
    GraphBuilder builder;
    const InstrId l0 = builder.load(0);
    const InstrId near0 = builder.op(Opcode::IAdd, {l0});
    const InstrId mid = builder.op(Opcode::IAdd, {near0});
    const InstrId near1 = builder.op(Opcode::IAdd, {mid});
    builder.store(1, near1);
    preplaceMemoryByBank(builder.graph(), 2);
    init(builder.build(), 2);

    runPass("PLACEPROP");
    EXPECT_EQ(weights_->preferredCluster(near0), 0);
    EXPECT_EQ(weights_->preferredCluster(near1), 1);
}

TEST_F(PassTest, PlacePropIsNoOpWithoutPreplacement)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IAdd);
    builder.op(Opcode::IAdd, {a});
    init(builder.build(), 2);
    runPass("PLACEPROP");
    EXPECT_NEAR(weights_->spaceMarginal(0, 0),
                weights_->spaceMarginal(0, 1), 1e-12);
}

TEST_F(PassTest, PlacePropIgnoresHubPreplacement)
{
    GraphBuilder builder;
    // A live-in hub on cluster 0 feeding many consumers, plus one
    // regular preplaced load on cluster 1.
    const InstrId hub = builder.op(Opcode::Const);
    builder.preplace(hub, 0);
    std::vector<InstrId> consumers;
    for (int k = 0; k < 12; ++k)
        consumers.push_back(builder.op(Opcode::IAdd, {hub}));
    const InstrId ld = builder.load(1, {consumers[0]});
    (void)ld;
    preplaceMemoryByBank(builder.graph(), 2);
    init(builder.build(), 2);
    params_.placePropHubDegree = 10;

    runPass("PLACEPROP");
    // consumers[0] is adjacent to the hub (cluster 0) AND to the load
    // (cluster 1); the hub must not count, so cluster 1 wins.
    EXPECT_EQ(weights_->preferredCluster(consumers[0]), 1);
}

TEST_F(PassTest, LoadBalanceDrainsOverloadedCluster)
{
    GraphBuilder builder;
    for (int k = 0; k < 6; ++k)
        builder.op(Opcode::IAdd);
    init(builder.build(), 2);

    // Pile everything on cluster 0.
    for (InstrId i = 0; i < 6; ++i) {
        weights_->row(i).scaleCluster(0, 3.0);
        weights_->row(i).normalize();
    }
    runPass("LOAD");
    // A uniform pile-up is exactly equalised in one application:
    // dividing by the per-cluster load cancels the 3x skew.
    for (InstrId i = 0; i < 6; ++i) {
        EXPECT_NEAR(weights_->spaceMarginal(i, 1),
                    weights_->spaceMarginal(i, 0), 1e-9);
        EXPECT_LT(weights_->spaceMarginal(i, 0), 0.75 - 1e-9);
    }
}

TEST_F(PassTest, LevelDistributeSpreadsIndependentWork)
{
    GraphBuilder builder;
    // Eight independent chains: level 0 has eight far-apart
    // instructions that should spread across clusters.
    for (int k = 0; k < 8; ++k) {
        const InstrId head = builder.op(Opcode::IAdd);
        builder.op(Opcode::IAdd, {head});
    }
    init(builder.build(), 4);
    params_.levelStride = 10;  // one band

    runPass("LEVEL");
    std::vector<int> seen(4, 0);
    for (InstrId i = 0; i < 16; ++i)
        seen[weights_->preferredCluster(i)] += 1;
    for (int c = 0; c < 4; ++c)
        EXPECT_GT(seen[c], 0) << "cluster " << c << " left empty";
}

TEST_F(PassTest, LevelDistributeKeepsNeighboursTogether)
{
    GraphBuilder builder;
    // A confident seed and a direct dependent within granularity.
    const InstrId seed = builder.op(Opcode::IAdd);
    const InstrId child = builder.op(Opcode::IAdd, {seed});
    init(builder.build(), 4);
    weights_->row(seed).scaleCluster(3, 100.0);
    weights_->row(seed).normalize();
    params_.levelStride = 10;
    params_.levelGranularity = 2;

    runPass("LEVEL");
    EXPECT_EQ(weights_->preferredCluster(child), 3);
}

TEST_F(PassTest, PathPropSpreadsConfidenceDownstream)
{
    GraphBuilder builder;
    const InstrId source = builder.op(Opcode::IAdd);
    const InstrId child = builder.op(Opcode::IAdd, {source});
    const InstrId grand = builder.op(Opcode::IAdd, {child});
    init(builder.build(), 4);
    weights_->row(source).scaleCluster(2, 100.0);
    weights_->row(source).normalize();

    runPass("PATHPROP");
    EXPECT_EQ(weights_->preferredCluster(child), 2);
    EXPECT_EQ(weights_->preferredCluster(grand), 2);
}

TEST_F(PassTest, PathPropLeavesConfidentInstructionsAlone)
{
    GraphBuilder builder;
    const InstrId source = builder.op(Opcode::IAdd);
    const InstrId other = builder.op(Opcode::IAdd, {source});
    init(builder.build(), 4);
    weights_->row(source).scaleCluster(2, 100.0);
    weights_->row(source).normalize();
    weights_->row(other).scaleCluster(1, 100.0);
    weights_->row(other).normalize();

    runPass("PATHPROP");
    // Both are above threshold: neither is dragged.
    EXPECT_EQ(weights_->preferredCluster(other), 1);
}

TEST_F(PassTest, EmphCpBoostsInfiniteResourceSlot)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IMul);  // latency 2
    const InstrId b = builder.op(Opcode::IAdd, {a});
    init(builder.build(), 2);

    runPass("EMPHCP");
    EXPECT_EQ(weights_->preferredTime(a), 0);
    EXPECT_EQ(weights_->preferredTime(b), 2);
}

TEST(PassRegistry, KnowsAllPasses)
{
    // The paper's eleven plus the REGPRESS extension.
    const auto names = knownPassNames();
    EXPECT_EQ(names.size(), 12u);
    for (const auto &name : names)
        EXPECT_NE(makePassByName(name), nullptr);
}

TEST_F(PassTest, RegPressNoOpUnderBudget)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IAdd);
    builder.op(Opcode::IAdd, {a});
    init(builder.build(), 2);
    const double before = weights_->spaceMarginal(0, 0);
    runPass("REGPRESS");
    EXPECT_NEAR(weights_->spaceMarginal(0, 0), before, 1e-12);
}

TEST_F(PassTest, RegPressDrainsOverloadedCluster)
{
    // Many long-lived values (defined early, used very late) piled on
    // one cluster exceed the 32-register budget, so REGPRESS must
    // push weight away from it.
    GraphBuilder builder;
    std::vector<InstrId> values;
    for (int k = 0; k < 48; ++k)
        values.push_back(builder.op(Opcode::IAdd));
    // A long serial delay chain, then one consumer reads everything.
    InstrId delay = builder.op(Opcode::IDiv);  // latency 12
    for (int k = 0; k < 4; ++k)
        delay = builder.op(Opcode::IDiv, {delay});
    values.push_back(delay);
    builder.op(Opcode::Select, values);
    init(builder.build(), 2);
    for (int k = 0; k < 48; ++k) {
        weights_->row(k).scaleCluster(0, 30.0);
        weights_->row(k).normalize();
    }
    const double before = weights_->spaceMarginal(0, 0);
    runPass("REGPRESS");
    EXPECT_LT(weights_->spaceMarginal(0, 0), before);
}

TEST(PassRegistry, ParseSequenceTrimsAndUppercases)
{
    const auto passes = parsePassSequence(" inittime , noise,COMM ");
    ASSERT_EQ(passes.size(), 3u);
    EXPECT_EQ(passes[0]->name(), "INITTIME");
    EXPECT_EQ(passes[1]->name(), "NOISE");
    EXPECT_EQ(passes[2]->name(), "COMM");
}

TEST(PassRegistry, TemporalOnlyFlags)
{
    EXPECT_TRUE(makePassByName("INITTIME")->temporalOnly());
    EXPECT_TRUE(makePassByName("EMPHCP")->temporalOnly());
    EXPECT_FALSE(makePassByName("COMM")->temporalOnly());
    EXPECT_FALSE(makePassByName("PLACE")->temporalOnly());
}

TEST(PassRegistryDeathTest, UnknownPassIsFatal)
{
    EXPECT_DEATH(makePassByName("FROBNICATE"), "unknown");
}

} // namespace
} // namespace csched
