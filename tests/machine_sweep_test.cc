/**
 * @file
 * Parameterised sweeps across machine sizes: every algorithm must stay
 * legal and sane from 1 to 16 clusters/tiles, speedups must be
 * monotone-ish in machine size for parallel kernels, and the
 * single-cluster degenerate cases must work everywhere.
 */

#include <gtest/gtest.h>

#include "eval/experiment.hh"
#include "eval/speedup.hh"
#include "machine/clustered_vliw.hh"
#include "machine/raw_machine.hh"
#include "workloads/workloads.hh"

namespace csched {
namespace {

class TileSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TileSweep, RawSchedulersLegalAtEverySize)
{
    const int tiles = GetParam();
    const auto raw = RawMachine::withTiles(tiles);
    const auto graph = findWorkload("jacobi").build(tiles, tiles);
    for (const char *name : {"convergent", "rawcc", "uas"}) {
        const auto algorithm =
            makeAlgorithm(*parseAlgorithmSpec(name), raw);
        const auto result = runAndCheck(*algorithm, graph, raw);
        EXPECT_GE(result.makespan, graph.criticalPathLength());
    }
}

TEST_P(TileSweep, VliwSchedulersLegalAtEverySize)
{
    const int clusters = GetParam();
    const ClusteredVliwMachine vliw(clusters);
    const auto graph = findWorkload("mxm").build(clusters, clusters);
    for (const char *name : {"convergent", "uas", "pcc"}) {
        const auto algorithm =
            makeAlgorithm(*parseAlgorithmSpec(name), vliw);
        const auto result = runAndCheck(*algorithm, graph, vliw);
        EXPECT_GE(result.makespan, graph.criticalPathLength());
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TileSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(MachineSweep, ParallelKernelSpeedupGrowsWithTiles)
{
    // Table-2 property: for a fat kernel, convergent speedup at 16
    // tiles clearly exceeds the 2-tile speedup.
    const auto &spec = findWorkload("life");
    const auto small = RawMachine::withTiles(2);
    const auto large = RawMachine::withTiles(16);
    const auto algo_small =
        makeAlgorithm(*parseAlgorithmSpec("convergent"), small);
    const auto algo_large =
        makeAlgorithm(*parseAlgorithmSpec("convergent"), large);
    const double s2 = speedupOf(spec, small, *algo_small);
    const double s16 = speedupOf(spec, large, *algo_large);
    EXPECT_GT(s16, 2.0 * s2);
}

TEST(MachineSweep, SerialKernelSpeedupSaturates)
{
    // sha barely speeds up no matter how many tiles (Table 2).
    const auto &spec = findWorkload("sha");
    const auto large = RawMachine::withTiles(16);
    const auto algorithm =
        makeAlgorithm(*parseAlgorithmSpec("convergent"), large);
    EXPECT_LT(speedupOf(spec, large, *algorithm), 3.0);
}

TEST(MachineSweep, OneClusterSpeedupIsApproximatelyOne)
{
    // On a single-cluster machine every scheduler degenerates to plain
    // list scheduling, so "speedup" over the single-cluster baseline
    // is ~1.
    const ClusteredVliwMachine vliw(1);
    const auto &spec = findWorkload("fir");
    for (const char *name : {"convergent", "uas", "pcc"}) {
        const auto algorithm =
            makeAlgorithm(*parseAlgorithmSpec(name), vliw);
        const double speedup = speedupOf(spec, vliw, *algorithm);
        EXPECT_NEAR(speedup, 1.0, 0.15) << "algorithm " << name;
    }
}

TEST(MachineSweep, NonSquareMeshesWork)
{
    const RawMachine raw(2, 8);
    const auto graph = findWorkload("vvmul").build(16, 16);
    const auto algorithm =
        makeAlgorithm(*parseAlgorithmSpec("convergent"), raw);
    const auto result = runAndCheck(*algorithm, graph, raw);
    EXPECT_GT(result.makespan, 0);
}

TEST(MachineSweep, SingleRowMeshWorks)
{
    const RawMachine raw(1, 4);
    const auto graph = findWorkload("jacobi").build(4, 4);
    const auto algorithm =
        makeAlgorithm(*parseAlgorithmSpec("rawcc"), raw);
    const auto result = runAndCheck(*algorithm, graph, raw);
    EXPECT_GT(result.makespan, 0);
}

} // namespace
} // namespace csched
