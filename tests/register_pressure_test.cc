/**
 * @file
 * Unit tests for the register-pressure analysis.
 */

#include <gtest/gtest.h>

#include "ir/graph_builder.hh"
#include "machine/clustered_vliw.hh"
#include "sched/list_scheduler.hh"
#include "sched/priorities.hh"
#include "sched/register_pressure.hh"

namespace csched {
namespace {

TEST(Pressure, SerialChainNeedsOneRegister)
{
    GraphBuilder builder;
    InstrId prev = builder.op(Opcode::IAdd);
    for (int k = 0; k < 4; ++k)
        prev = builder.op(Opcode::IAdd, {prev});
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(1);
    const ListScheduler scheduler(vliw);
    const auto schedule = scheduler.run(graph, std::vector<int>(5, 0),
                                        criticalPathPriority(graph));
    const auto report = analyzePressure(graph, schedule);
    EXPECT_EQ(report.peak(), 1);
    EXPECT_EQ(report.clustersOverBudget(32), 0);
}

TEST(Pressure, WideJoinHoldsManyValuesLive)
{
    GraphBuilder builder;
    std::vector<InstrId> producers;
    for (int k = 0; k < 6; ++k)
        producers.push_back(builder.op(Opcode::IAdd));
    // One consumer reads them all much later.
    builder.op(Opcode::Select, producers);
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(1);
    const ListScheduler scheduler(vliw);
    const auto schedule = scheduler.run(graph, std::vector<int>(7, 0),
                                        criticalPathPriority(graph));
    const auto report = analyzePressure(graph, schedule);
    // All six values are live simultaneously just before the join.
    EXPECT_GE(report.peak(), 6);
}

TEST(Pressure, StoresProduceNoValue)
{
    GraphBuilder builder;
    const InstrId v = builder.op(Opcode::IAdd);
    builder.store(0, v);
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(1);
    const ListScheduler scheduler(vliw);
    const auto schedule = scheduler.run(graph, {0, 0},
                                        criticalPathPriority(graph));
    const auto report = analyzePressure(graph, schedule);
    EXPECT_EQ(report.peak(), 1);  // only v
}

TEST(Pressure, RemoteConsumerExtendsLiveness)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IAdd);
    builder.op(Opcode::IAdd, {a});
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(2);
    const ListScheduler scheduler(vliw);
    const auto schedule =
        scheduler.run(graph, {0, 1}, criticalPathPriority(graph));
    const auto report = analyzePressure(graph, schedule);
    ASSERT_EQ(report.maxLive.size(), 2u);
    // The value is live on both clusters: at the source until the
    // copy reads it, at the destination from arrival to use.
    EXPECT_GE(report.maxLive[0], 1);
    EXPECT_GE(report.maxLive[1], 1);
}

TEST(Pressure, ClustersOverBudgetCounts)
{
    PressureReport report;
    report.maxLive = {40, 10, 33, 32};
    EXPECT_EQ(report.peak(), 40);
    EXPECT_EQ(report.clustersOverBudget(32), 2);
    EXPECT_EQ(report.clustersOverBudget(64), 0);
}

} // namespace
} // namespace csched
