/**
 * @file
 * Tests for the process-isolation layer (runner/worker.hh): the
 * length-prefixed pipe protocol, the reply decoder, containment of
 * injected worker deaths (segfault / hang / OOM), the determinism
 * guarantee that --isolate never changes the reported bytes, and the
 * retry/backoff and resume contracts under isolation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <string>

#include <unistd.h>

#include "runner/failure_summary.hh"
#include "runner/grid_runner.hh"
#include "runner/journal.hh"
#include "runner/json_report.hh"
#include "runner/shutdown.hh"
#include "runner/worker.hh"
#include "support/fault_injection.hh"
#include "support/subprocess.hh"

namespace csched {
namespace {

FaultPlan
mustParse(const std::string &text)
{
    std::string error;
    const auto plan = FaultPlan::parse(text, &error);
    EXPECT_TRUE(plan.has_value()) << error;
    return plan.value_or(FaultPlan());
}

/** Interrupt tests must not leak shutdown state into later tests. */
struct InterruptGuard
{
    InterruptGuard() { clearInterrupt(); }
    ~InterruptGuard() { clearInterrupt(); }
};

std::string
tempPath(const std::string &name)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + info->test_suite_name() + "-" +
           info->name() + "-" + name;
}

GridSpec
smallGrid(int jobs = 2)
{
    GridSpec grid;
    grid.workloads = {"vvmul", "fir"};
    grid.machines = {"vliw2"};
    grid.algorithms = {*parseAlgorithmSpec("uas"),
                       *parseAlgorithmSpec("convergent")};
    grid.jobs = jobs;
    return grid;
}

std::string
deterministicJson(const GridReport &report)
{
    ReportOptions options;
    options.timings = false;
    return gridReportToJson(report, options);
}

/** A pipe whose ends close on destruction (leak-proof asserts). */
struct Pipe
{
    int fds[2] = {-1, -1};
    Pipe() { EXPECT_EQ(::pipe(fds), 0); }
    ~Pipe()
    {
        closeRead();
        closeWrite();
    }
    void closeRead()
    {
        if (fds[0] != -1)
            ::close(fds[0]);
        fds[0] = -1;
    }
    void closeWrite()
    {
        if (fds[1] != -1)
            ::close(fds[1]);
        fds[1] = -1;
    }
    int readFd() const { return fds[0]; }
    int writeFd() const { return fds[1]; }
};

void
writeRaw(int fd, const std::string &bytes)
{
    ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
}

TEST(FrameProtocol, RoundTripsPayloads)
{
    Pipe pipe;
    const std::string payload = "{\"hello\": \"worker\"}";
    ASSERT_TRUE(writeFrame(pipe.writeFd(), payload).ok());
    ASSERT_TRUE(writeFrame(pipe.writeFd(), "").ok());
    auto first = readFrame(pipe.readFd(), 1000);
    ASSERT_EQ(first.kind, FrameResult::Kind::Payload) << first.error;
    EXPECT_EQ(first.payload, payload);
    auto second = readFrame(pipe.readFd(), 1000);
    ASSERT_EQ(second.kind, FrameResult::Kind::Payload) << second.error;
    EXPECT_EQ(second.payload, "");
}

TEST(FrameProtocol, CleanEofBeforeAnyByte)
{
    Pipe pipe;
    pipe.closeWrite();
    const auto result = readFrame(pipe.readFd(), 1000);
    EXPECT_EQ(result.kind, FrameResult::Kind::Eof);
}

TEST(FrameProtocol, TruncatedLengthIsMalformed)
{
    // A worker that dies two bytes into the length prefix.
    Pipe pipe;
    writeRaw(pipe.writeFd(), std::string("\x08\x00", 2));
    pipe.closeWrite();
    const auto result = readFrame(pipe.readFd(), 1000);
    EXPECT_EQ(result.kind, FrameResult::Kind::Malformed);
    EXPECT_FALSE(result.error.empty());
}

TEST(FrameProtocol, TruncatedPayloadIsMalformed)
{
    // Length says 8 bytes, the stream ends after 3.
    Pipe pipe;
    writeRaw(pipe.writeFd(),
             std::string("\x08\x00\x00\x00", 4) + "abc");
    pipe.closeWrite();
    const auto result = readFrame(pipe.readFd(), 1000);
    EXPECT_EQ(result.kind, FrameResult::Kind::Malformed);
    EXPECT_FALSE(result.error.empty());
}

TEST(FrameProtocol, OversizedLengthFailsFastWithoutAllocating)
{
    // Garbage length bytes (~4 GiB) must be rejected as corruption,
    // not trigger an allocation-and-wait for data that never comes.
    // The classification is Oversized, distinct from Malformed, so an
    // untrusted-peer server can report it with its own error.
    Pipe pipe;
    writeRaw(pipe.writeFd(), std::string("\xff\xff\xff\xff", 4));
    const auto result = readFrame(pipe.readFd(), 1000);
    EXPECT_EQ(result.kind, FrameResult::Kind::Oversized);
    EXPECT_NE(result.error.find("frame length"), std::string::npos);
}

TEST(FrameProtocol, PeerStallingMidFrameIsATimeoutNotAHang)
{
    // The write end stays open: without the deadline this would block
    // forever, which is exactly the hang the watchdog must never
    // inherit from the protocol layer.
    Pipe pipe;
    writeRaw(pipe.writeFd(), std::string("\x08\x00\x00\x00", 4) + "ab");
    const auto result = readFrame(pipe.readFd(), 50);
    EXPECT_EQ(result.kind, FrameResult::Kind::Timeout);
    EXPECT_FALSE(result.error.empty());
}

TEST(WorkerProtocol, GarbageRepliesBecomeWorkerCrashed)
{
    // None of these may hang, throw, or be mistaken for a result.
    const std::string garbage_frames[] = {
        "",                         // empty frame
        "not json at all",          // lexical garbage
        "[1, 2, 3]",                // valid JSON, wrong shape
        "{\"workload\": \"fir\"}",  // object missing result fields
        std::string("\x00\xff junk", 7),  // binary noise
    };
    for (const auto &payload : garbage_frames) {
        const auto decoded = decodeWorkerReply(payload);
        ASSERT_FALSE(decoded.ok()) << "payload: " << payload;
        EXPECT_EQ(decoded.status().code(), ErrorCode::WorkerCrashed);
        EXPECT_NE(decoded.status().message().find(
                      "worker protocol error"),
                  std::string::npos)
            << decoded.status().toString();
    }
}

TEST(WorkerProtocol, EncodedJobCarriesTheSpecInTextForm)
{
    JobSpec spec;
    spec.workload = "fir";
    spec.machine = "vliw2";
    spec.algorithm = *parseAlgorithmSpec("convergent:INITTIME,PLACE");
    JobPolicy policy;
    policy.deadlineMs = 1234;
    const auto plan = mustParse("pass.apply=slow:ms=1");
    policy.faults = &plan;

    BaselineMemo baselines;
    baselines[{"fir", "vliw2"}] = BaselineEntry{Status(), 42};

    const std::string frame =
        encodeWorkerJob(spec, policy, /*retries=*/2, /*die=*/"",
                        &baselines);
    for (const char *needle :
         {"\"workload\": \"fir\"", "\"machine\": \"vliw2\"",
          "\"deadlineMs\": 1234", "\"retries\": 2",
          "\"baselineMakespan\": 42", "INITTIME", "pass.apply"}) {
        EXPECT_NE(frame.find(needle), std::string::npos)
            << "missing " << needle << " in " << frame;
    }
}

TEST(Isolation, ReportBytesIdenticalToInProcessRun)
{
    InterruptGuard guard;
    const auto baseline = runGrid(smallGrid());
    ASSERT_TRUE(baseline.allOk());
    for (const int jobs : {1, 4}) {
        auto grid = smallGrid(jobs);
        grid.isolate = true;
        const auto isolated = runGrid(grid);
        EXPECT_EQ(deterministicJson(isolated),
                  deterministicJson(baseline))
            << "--isolate changed the report at --jobs " << jobs;
    }
}

/** The containment grid: one cell segfaults, one hangs, one OOMs. */
GridSpec
faultyGrid(const FaultPlan &plan, int jobs)
{
    auto grid = smallGrid(jobs);
    grid.isolate = true;
    grid.faults = &plan;
    // The hang is only observable under a deadline: the watchdog
    // budget is derived from it.  (No --mem-limit-mb here: the OOM
    // directive's own allocation cap kills the worker regardless, and
    // an address-space cap would break sanitized healthy cells.)
    grid.deadlineMs = 2000;
    return grid;
}

TEST(Isolation, CrashHangAndOomAreContainedPerCell)
{
    InterruptGuard guard;
    const auto plan =
        mustParse("worker.crash=fail:match=fir/vliw2/uas;"
                  "worker.hang=fail:match=vvmul/vliw2/convergent;"
                  "worker.oom=fail:match=fir/vliw2/convergent");
    const auto report = runGrid(faultyGrid(plan, 4));
    EXPECT_FALSE(report.interrupted);
    EXPECT_EQ(report.summary.total, 4);
    EXPECT_EQ(report.summary.ok, 1);
    EXPECT_EQ(gridExitCode(report, /*keep_going=*/false), 1);

    for (const auto &job : report.results) {
        const std::string key =
            job.workload + "/" + job.machine + "/" + job.algorithm;
        if (key == "fir/vliw2/uas") {
            EXPECT_EQ(job.outcome, JobOutcome::Failed);
            EXPECT_EQ(job.error, ErrorCode::WorkerCrashed);
            EXPECT_EQ(job.workerSignal, SIGSEGV);
            EXPECT_NE(job.diagnostic.find("worker killed by SIGSEGV"),
                      std::string::npos)
                << job.diagnostic;
        } else if (key == "vvmul/vliw2/convergent") {
            EXPECT_EQ(job.outcome, JobOutcome::Timeout);
            EXPECT_EQ(job.error, ErrorCode::WorkerKilled);
            EXPECT_EQ(job.workerSignal, SIGKILL);
            EXPECT_NE(job.diagnostic.find("watchdog"),
                      std::string::npos)
                << job.diagnostic;
        } else if (key == "fir/vliw2/convergent") {
            EXPECT_EQ(job.outcome, JobOutcome::Failed);
            EXPECT_EQ(job.error, ErrorCode::WorkerCrashed);
            EXPECT_EQ(job.workerSignal, SIGKILL);
            EXPECT_NE(job.diagnostic.find("worker killed by SIGKILL"),
                      std::string::npos)
                << job.diagnostic;
        } else {
            EXPECT_EQ(key, "vvmul/vliw2/uas");
            EXPECT_TRUE(job.ok()) << job.diagnostic;
        }
    }
}

TEST(Isolation, DeathOutcomesAreByteIdenticalAcrossThreadCounts)
{
    InterruptGuard guard;
    const auto plan =
        mustParse("worker.crash=fail:match=fir/vliw2/uas;"
                  "worker.hang=fail:match=vvmul/vliw2/convergent");
    const auto serial = runGrid(faultyGrid(plan, 1));
    const auto parallel = runGrid(faultyGrid(plan, 4));
    EXPECT_FALSE(serial.allOk());
    EXPECT_EQ(deterministicJson(serial), deterministicJson(parallel));
}

TEST(Isolation, TransientCrashIsHealedByRespawnAndRetry)
{
    InterruptGuard guard;
    // The worker dies on the first dispatch only; the retry respawns
    // a worker, re-dispatches, and the job succeeds on attempt 2.
    const auto plan =
        mustParse("worker.crash=fail:match=fir/vliw2/uas:nth=1");
    auto grid = smallGrid(2);
    grid.isolate = true;
    grid.faults = &plan;
    grid.retries = 1;
    const auto report = runGrid(grid);
    EXPECT_TRUE(report.allOk());
    EXPECT_EQ(report.summary.retried, 1);
    for (const auto &job : report.results) {
        if (job.workload == "fir" && job.algorithm == "uas") {
            EXPECT_TRUE(job.retriedThenOk());
            EXPECT_EQ(job.attempts, 2);
        } else {
            EXPECT_EQ(job.attempts, 1);
        }
    }
}

TEST(Isolation, PersistentCrashRecordsEveryAttemptAndBackoff)
{
    InterruptGuard guard;
    const auto plan =
        mustParse("worker.crash=fail:match=fir/vliw2/uas");
    auto grid = smallGrid(2);
    grid.isolate = true;
    grid.faults = &plan;
    grid.retries = 2;
    const auto report = runGrid(grid);
    for (const auto &job : report.results) {
        if (job.workload != "fir" || job.algorithm != "uas")
            continue;
        EXPECT_EQ(job.outcome, JobOutcome::Failed);
        EXPECT_EQ(job.error, ErrorCode::WorkerCrashed);
        EXPECT_EQ(job.attempts, 3);
        // Satellite contract: the delays slept between attempts are
        // recorded in the terminal diagnostic, deterministically.
        const std::string note =
            " [retry backoff ms: " +
            std::to_string(retryBackoffMs("fir/vliw2/uas", 2)) + " " +
            std::to_string(retryBackoffMs("fir/vliw2/uas", 3)) + "]";
        EXPECT_NE(job.diagnostic.find(note), std::string::npos)
            << job.diagnostic;
    }
}

TEST(Isolation, KilledAndResumedRunMatchesUninterruptedBytes)
{
    InterruptGuard guard;
    const std::string path = tempPath("journal.jsonl");

    auto plain = smallGrid();
    plain.isolate = true;
    const auto baseline = runGrid(plain);
    ASSERT_TRUE(baseline.allOk());

    // The injected interrupt fires *inside the worker process*; the
    // child reports `interrupted` and the parent must drain the grid
    // exactly as an in-process run would.
    const auto plan =
        mustParse("runner.interrupt=fail:match=fir/vliw2/convergent");
    auto interrupted = smallGrid(4);
    interrupted.isolate = true;
    interrupted.journalPath = path;
    interrupted.faults = &plan;
    const auto partial = runGrid(interrupted);
    EXPECT_TRUE(partial.interrupted);
    EXPECT_GT(partial.summary.interrupted, 0);
    EXPECT_LT(partial.summary.ok, partial.summary.total);

    clearInterrupt();
    auto resumed_grid = smallGrid();
    resumed_grid.isolate = true;
    resumed_grid.journalPath = path;
    resumed_grid.resume = true;
    const auto resumed = runGrid(resumed_grid);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.replayed, partial.summary.ok);
    EXPECT_EQ(deterministicJson(resumed), deterministicJson(baseline));
}

TEST(Isolation, WorkerDeathRecordsJournalAndReplayByteIdentically)
{
    InterruptGuard guard;
    const std::string path = tempPath("journal.jsonl");
    const auto plan =
        mustParse("worker.crash=fail:match=fir/vliw2/uas");
    auto grid = faultyGrid(plan, 2);
    grid.journalPath = path;
    const auto report = runGrid(grid);
    EXPECT_FALSE(report.allOk());

    // The crashed cell's outcome -- signal and all -- round-trips
    // through the journal, so a resume replays it instead of
    // re-running the job.
    auto resumed_grid = faultyGrid(plan, 2);
    resumed_grid.journalPath = path;
    resumed_grid.resume = true;
    const auto resumed = runGrid(resumed_grid);
    EXPECT_EQ(resumed.replayed, report.summary.total);
    EXPECT_EQ(deterministicJson(resumed), deterministicJson(report));
    for (const auto &job : resumed.results) {
        if (job.workload == "fir" && job.algorithm == "uas") {
            EXPECT_EQ(job.workerSignal, SIGSEGV);
        }
    }
}

TEST(Backoff, DeterministicJitterWithinBounds)
{
    // Pure function of (key, attempt): same inputs, same delay.
    EXPECT_EQ(retryBackoffMs("fir/vliw2/uas", 2),
              retryBackoffMs("fir/vliw2/uas", 2));
    // Jittered exponential: attempt k draws from [base/2, 3*base/2)
    // with base = min(10 * 2^(k-2), 200).
    for (int attempt = 2; attempt <= 12; ++attempt) {
        const int base =
            std::min(10 << std::min(attempt - 2, 5), 200);
        const int ms = retryBackoffMs("fir/vliw2/uas", attempt);
        EXPECT_GE(ms, base / 2) << "attempt " << attempt;
        EXPECT_LE(ms, base + base / 2) << "attempt " << attempt;
    }
}

} // namespace
} // namespace csched
