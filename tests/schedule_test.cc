/**
 * @file
 * Unit tests for the Schedule container.
 */

#include <gtest/gtest.h>

#include "sched/schedule.hh"

namespace csched {
namespace {

Placement
at(int cluster, int cycle, int fu, int finish)
{
    return Placement{cluster, cycle, fu, finish};
}

TEST(Schedule, PlacementRoundTrip)
{
    Schedule schedule(3, 2);
    EXPECT_FALSE(schedule.placed(0));
    schedule.place(0, at(1, 5, 0, 6));
    ASSERT_TRUE(schedule.placed(0));
    EXPECT_EQ(schedule.clusterOf(0), 1);
    EXPECT_EQ(schedule.cycleOf(0), 5);
    EXPECT_EQ(schedule.at(0).fu, 0);
    EXPECT_EQ(schedule.at(0).finish, 6);
}

TEST(Schedule, MakespanTracksFinishesAndComms)
{
    Schedule schedule(2, 2);
    EXPECT_EQ(schedule.makespan(), 0);
    schedule.place(0, at(0, 0, 0, 3));
    EXPECT_EQ(schedule.makespan(), 3);
    schedule.place(1, at(1, 8, 0, 9));
    EXPECT_EQ(schedule.makespan(), 9);
    CommEvent event;
    event.producer = 0;
    event.fromCluster = 0;
    event.toCluster = 1;
    event.start = 10;
    event.arrive = 11;
    schedule.addComm(event);
    EXPECT_EQ(schedule.makespan(), 11);
}

TEST(Schedule, AssignmentAndLoads)
{
    Schedule schedule(4, 2);
    schedule.place(0, at(0, 0, 0, 1));
    schedule.place(1, at(0, 1, 0, 2));
    schedule.place(2, at(1, 0, 0, 1));
    schedule.place(3, at(1, 1, 0, 2));
    EXPECT_EQ(schedule.assignment(), (std::vector<int>{0, 0, 1, 1}));
    EXPECT_EQ(schedule.clusterLoad(0), 2);
    EXPECT_EQ(schedule.clusterLoad(1), 2);
}

TEST(ScheduleDeathTest, DoublePlacementRejected)
{
    Schedule schedule(1, 1);
    schedule.place(0, at(0, 0, 0, 1));
    EXPECT_DEATH(schedule.place(0, at(0, 1, 0, 2)), "placed twice");
}

TEST(ScheduleDeathTest, InvalidPlacementRejected)
{
    Schedule schedule(1, 2);
    EXPECT_DEATH(schedule.place(0, at(2, 0, 0, 1)), "cluster");
    EXPECT_DEATH(schedule.place(0, at(0, 3, 0, 2)), "finish");
}

TEST(ScheduleDeathTest, CommValidation)
{
    Schedule schedule(1, 2);
    CommEvent same_cluster;
    same_cluster.producer = 0;
    same_cluster.fromCluster = 1;
    same_cluster.toCluster = 1;
    same_cluster.start = 0;
    same_cluster.arrive = 1;
    EXPECT_DEATH(schedule.addComm(same_cluster), "within one cluster");
}

} // namespace
} // namespace csched
