/**
 * @file
 * Unit tests for the machine models: clustered VLIW, Raw mesh, and the
 * uniform Figure-1 machine.
 */

#include <gtest/gtest.h>

#include "machine/clustered_vliw.hh"
#include "machine/raw_machine.hh"
#include "machine/single_cluster.hh"

namespace csched {
namespace {

TEST(ClusteredVliw, HasFourFusPerCluster)
{
    const ClusteredVliwMachine vliw(4);
    EXPECT_EQ(vliw.numClusters(), 4);
    const auto &fus = vliw.clusterFus(0);
    ASSERT_EQ(fus.size(), 4u);
    EXPECT_EQ(fus[0], FuKind::IntAlu);
    EXPECT_EQ(fus[1], FuKind::IntAluMem);
    EXPECT_EQ(fus[2], FuKind::Fpu);
    EXPECT_EQ(fus[3], FuKind::Transfer);
}

TEST(ClusteredVliw, Capabilities)
{
    const ClusteredVliwMachine vliw(2);
    EXPECT_TRUE(vliw.canExecute(0, Opcode::FAdd));
    EXPECT_TRUE(vliw.canExecute(1, Opcode::Load));
    EXPECT_EQ(vliw.numFusFor(0, Opcode::IAdd), 2);  // IntAlu + IntAluMem
    EXPECT_EQ(vliw.numFusFor(0, Opcode::Load), 1);
    EXPECT_EQ(vliw.numFusFor(0, Opcode::FMul), 1);
}

TEST(ClusteredVliw, CommunicationModel)
{
    const ClusteredVliwMachine vliw(4);
    EXPECT_EQ(vliw.commStyle(), CommStyle::TransferUnit);
    EXPECT_EQ(vliw.commLatency(1, 1), 0);
    EXPECT_EQ(vliw.commLatency(0, 3), 1);
}

TEST(ClusteredVliw, MemoryBankInterleaving)
{
    const ClusteredVliwMachine vliw(4);
    EXPECT_EQ(vliw.homeOfBank(0), 0);
    EXPECT_EQ(vliw.homeOfBank(7), 3);
    EXPECT_EQ(vliw.memoryPenalty(2, 2), 0);
    EXPECT_EQ(vliw.memoryPenalty(2, 1), 1);  // remote: one cycle
    EXPECT_EQ(vliw.memoryPenalty(-1, 1), 0); // unanalysable: local
}

TEST(ClusteredVliw, SingleClusterSibling)
{
    const ClusteredVliwMachine vliw(4);
    const auto single = vliw.makeSingleCluster();
    EXPECT_EQ(single->numClusters(), 1);
    EXPECT_EQ(single->commStyle(), CommStyle::TransferUnit);
}

TEST(RawMachine, MeshGeometry)
{
    const RawMachine raw(4, 4);
    EXPECT_EQ(raw.numClusters(), 16);
    EXPECT_EQ(raw.rowOf(5), 1);
    EXPECT_EQ(raw.colOf(5), 1);
    EXPECT_EQ(raw.tileAt(3, 2), 14);
    EXPECT_EQ(raw.distance(0, 15), 6);
    EXPECT_EQ(raw.distance(5, 6), 1);
}

TEST(RawMachine, WithTilesFactorisesSquarely)
{
    EXPECT_EQ(RawMachine::withTiles(16).rows(), 4);
    EXPECT_EQ(RawMachine::withTiles(16).cols(), 4);
    EXPECT_EQ(RawMachine::withTiles(8).rows(), 2);
    EXPECT_EQ(RawMachine::withTiles(8).cols(), 4);
    EXPECT_EQ(RawMachine::withTiles(2).rows(), 1);
    EXPECT_EQ(RawMachine::withTiles(2).cols(), 2);
    EXPECT_EQ(RawMachine::withTiles(1).numClusters(), 1);
}

TEST(RawMachine, StaticNetworkLatency)
{
    const RawMachine raw(4, 4);
    EXPECT_EQ(raw.commStyle(), CommStyle::Network);
    EXPECT_EQ(raw.commLatency(0, 0), 0);
    // Three cycles between neighbours...
    EXPECT_EQ(raw.commLatency(0, 1), 3);
    // ...plus one per additional hop.
    EXPECT_EQ(raw.commLatency(0, 2), 4);
    EXPECT_EQ(raw.commLatency(0, 15), 8);
}

TEST(RawMachine, RoutesAreDimensionOrdered)
{
    const RawMachine raw(4, 4);
    // 0 (0,0) -> 10 (2,2): two hops east then two south.
    const auto route = raw.route(0, 10);
    ASSERT_EQ(route.size(), 4u);
    // Link ids encode (tile, direction): east = 0, south = 2.
    EXPECT_EQ(route[0], 0 * 4 + 0);
    EXPECT_EQ(route[1], 1 * 4 + 0);
    EXPECT_EQ(route[2], 2 * 4 + 2);
    EXPECT_EQ(route[3], 6 * 4 + 2);
}

TEST(RawMachine, RouteLengthEqualsManhattanDistance)
{
    const RawMachine raw(2, 4);
    for (int a = 0; a < raw.numClusters(); ++a)
        for (int b = 0; b < raw.numClusters(); ++b)
            EXPECT_EQ(raw.route(a, b).size(),
                      static_cast<size_t>(raw.distance(a, b)));
}

TEST(RawMachine, TilesAreUniversal)
{
    const RawMachine raw(2, 2);
    ASSERT_EQ(raw.clusterFus(0).size(), 1u);
    EXPECT_EQ(raw.clusterFus(0)[0], FuKind::Universal);
    EXPECT_TRUE(raw.canExecute(3, Opcode::FSqrt));
    EXPECT_TRUE(raw.canExecute(3, Opcode::Store));
}

TEST(RawMachine, RemoteMemoryIsExpensive)
{
    const RawMachine raw(4, 4);
    EXPECT_EQ(raw.memoryPenalty(3, 3), 0);
    // Dynamic-network round trip: base 6 plus 2 per hop.
    EXPECT_EQ(raw.memoryPenalty(1, 0), 8);
    EXPECT_GT(raw.memoryPenalty(15, 0), raw.memoryPenalty(1, 0));
}

TEST(RawMachine, SingleClusterSibling)
{
    const auto single = RawMachine(4, 4).makeSingleCluster();
    EXPECT_EQ(single->numClusters(), 1);
}

TEST(UniformMachine, ReceiveStyleComm)
{
    const UniformMachine uniform(3, 1, 1);
    EXPECT_EQ(uniform.numClusters(), 3);
    EXPECT_EQ(uniform.commStyle(), CommStyle::ReceiveOp);
    EXPECT_EQ(uniform.commLatency(0, 2), 1);
    EXPECT_TRUE(uniform.canExecute(0, Opcode::Recv));
    EXPECT_TRUE(uniform.canExecute(0, Opcode::FMul));
}

TEST(UniformMachine, Names)
{
    EXPECT_EQ(UniformMachine(3, 1, 1).name(), "uniform3x1");
    EXPECT_EQ(ClusteredVliwMachine(4).name(), "vliw4");
    EXPECT_EQ(RawMachine(4, 4).name(), "raw4x4");
}

TEST(MachineDeathTest, InvalidClusterQueries)
{
    const ClusteredVliwMachine vliw(2);
    EXPECT_DEATH(vliw.clusterFus(2), "out of range");
    const RawMachine raw(2, 2);
    EXPECT_DEATH(raw.clusterFus(-1), "out of range");
}

} // namespace
} // namespace csched
