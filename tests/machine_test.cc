/**
 * @file
 * Unit tests for the machine models: clustered VLIW, Raw mesh, and the
 * uniform Figure-1 machine.
 */

#include <gtest/gtest.h>

#include "machine/clustered_vliw.hh"
#include "machine/fault_map.hh"
#include "machine/machine_spec.hh"
#include "machine/raw_machine.hh"
#include "machine/single_cluster.hh"

namespace csched {
namespace {

TEST(ClusteredVliw, HasFourFusPerCluster)
{
    const ClusteredVliwMachine vliw(4);
    EXPECT_EQ(vliw.numClusters(), 4);
    const auto &fus = vliw.clusterFus(0);
    ASSERT_EQ(fus.size(), 4u);
    EXPECT_EQ(fus[0], FuKind::IntAlu);
    EXPECT_EQ(fus[1], FuKind::IntAluMem);
    EXPECT_EQ(fus[2], FuKind::Fpu);
    EXPECT_EQ(fus[3], FuKind::Transfer);
}

TEST(ClusteredVliw, Capabilities)
{
    const ClusteredVliwMachine vliw(2);
    EXPECT_TRUE(vliw.canExecute(0, Opcode::FAdd));
    EXPECT_TRUE(vliw.canExecute(1, Opcode::Load));
    EXPECT_EQ(vliw.numFusFor(0, Opcode::IAdd), 2);  // IntAlu + IntAluMem
    EXPECT_EQ(vliw.numFusFor(0, Opcode::Load), 1);
    EXPECT_EQ(vliw.numFusFor(0, Opcode::FMul), 1);
}

TEST(ClusteredVliw, CommunicationModel)
{
    const ClusteredVliwMachine vliw(4);
    EXPECT_EQ(vliw.commStyle(), CommStyle::TransferUnit);
    EXPECT_EQ(vliw.commLatency(1, 1), 0);
    EXPECT_EQ(vliw.commLatency(0, 3), 1);
}

TEST(ClusteredVliw, MemoryBankInterleaving)
{
    const ClusteredVliwMachine vliw(4);
    EXPECT_EQ(vliw.homeOfBank(0), 0);
    EXPECT_EQ(vliw.homeOfBank(7), 3);
    EXPECT_EQ(vliw.memoryPenalty(2, 2), 0);
    EXPECT_EQ(vliw.memoryPenalty(2, 1), 1);  // remote: one cycle
    EXPECT_EQ(vliw.memoryPenalty(-1, 1), 0); // unanalysable: local
}

TEST(ClusteredVliw, SingleClusterSibling)
{
    const ClusteredVliwMachine vliw(4);
    const auto single = vliw.makeSingleCluster();
    EXPECT_EQ(single->numClusters(), 1);
    EXPECT_EQ(single->commStyle(), CommStyle::TransferUnit);
}

TEST(RawMachine, MeshGeometry)
{
    const RawMachine raw(4, 4);
    EXPECT_EQ(raw.numClusters(), 16);
    EXPECT_EQ(raw.rowOf(5), 1);
    EXPECT_EQ(raw.colOf(5), 1);
    EXPECT_EQ(raw.tileAt(3, 2), 14);
    EXPECT_EQ(raw.distance(0, 15), 6);
    EXPECT_EQ(raw.distance(5, 6), 1);
}

TEST(RawMachine, WithTilesFactorisesSquarely)
{
    EXPECT_EQ(RawMachine::withTiles(16).rows(), 4);
    EXPECT_EQ(RawMachine::withTiles(16).cols(), 4);
    EXPECT_EQ(RawMachine::withTiles(8).rows(), 2);
    EXPECT_EQ(RawMachine::withTiles(8).cols(), 4);
    EXPECT_EQ(RawMachine::withTiles(2).rows(), 1);
    EXPECT_EQ(RawMachine::withTiles(2).cols(), 2);
    EXPECT_EQ(RawMachine::withTiles(1).numClusters(), 1);
}

TEST(RawMachine, StaticNetworkLatency)
{
    const RawMachine raw(4, 4);
    EXPECT_EQ(raw.commStyle(), CommStyle::Network);
    EXPECT_EQ(raw.commLatency(0, 0), 0);
    // Three cycles between neighbours...
    EXPECT_EQ(raw.commLatency(0, 1), 3);
    // ...plus one per additional hop.
    EXPECT_EQ(raw.commLatency(0, 2), 4);
    EXPECT_EQ(raw.commLatency(0, 15), 8);
}

TEST(RawMachine, RoutesAreDimensionOrdered)
{
    const RawMachine raw(4, 4);
    // 0 (0,0) -> 10 (2,2): two hops east then two south.
    const auto route = raw.route(0, 10);
    ASSERT_EQ(route.size(), 4u);
    // Link ids encode (tile, direction): east = 0, south = 2.
    EXPECT_EQ(route[0], 0 * 4 + 0);
    EXPECT_EQ(route[1], 1 * 4 + 0);
    EXPECT_EQ(route[2], 2 * 4 + 2);
    EXPECT_EQ(route[3], 6 * 4 + 2);
}

TEST(RawMachine, RouteLengthEqualsManhattanDistance)
{
    const RawMachine raw(2, 4);
    for (int a = 0; a < raw.numClusters(); ++a)
        for (int b = 0; b < raw.numClusters(); ++b)
            EXPECT_EQ(raw.route(a, b).size(),
                      static_cast<size_t>(raw.distance(a, b)));
}

TEST(RawMachine, TilesAreUniversal)
{
    const RawMachine raw(2, 2);
    ASSERT_EQ(raw.clusterFus(0).size(), 1u);
    EXPECT_EQ(raw.clusterFus(0)[0], FuKind::Universal);
    EXPECT_TRUE(raw.canExecute(3, Opcode::FSqrt));
    EXPECT_TRUE(raw.canExecute(3, Opcode::Store));
}

TEST(RawMachine, RemoteMemoryIsExpensive)
{
    const RawMachine raw(4, 4);
    EXPECT_EQ(raw.memoryPenalty(3, 3), 0);
    // Dynamic-network round trip: base 6 plus 2 per hop.
    EXPECT_EQ(raw.memoryPenalty(1, 0), 8);
    EXPECT_GT(raw.memoryPenalty(15, 0), raw.memoryPenalty(1, 0));
}

TEST(RawMachine, SingleClusterSibling)
{
    const auto single = RawMachine(4, 4).makeSingleCluster();
    EXPECT_EQ(single->numClusters(), 1);
}

TEST(UniformMachine, ReceiveStyleComm)
{
    const UniformMachine uniform(3, 1, 1);
    EXPECT_EQ(uniform.numClusters(), 3);
    EXPECT_EQ(uniform.commStyle(), CommStyle::ReceiveOp);
    EXPECT_EQ(uniform.commLatency(0, 2), 1);
    EXPECT_TRUE(uniform.canExecute(0, Opcode::Recv));
    EXPECT_TRUE(uniform.canExecute(0, Opcode::FMul));
}

TEST(UniformMachine, Names)
{
    EXPECT_EQ(UniformMachine(3, 1, 1).name(), "uniform3x1");
    EXPECT_EQ(ClusteredVliwMachine(4).name(), "vliw4");
    EXPECT_EQ(RawMachine(4, 4).name(), "raw4x4");
}

TEST(FaultSpec, ParsesPercentagesAndFactor)
{
    const auto spec =
        FaultSpec::parse("seed:7,tiles:5%,links:3%,slow:10%,factor:3");
    ASSERT_TRUE(spec.ok()) << spec.status().toString();
    EXPECT_EQ(spec->seed, 7u);
    EXPECT_EQ(spec->tilesPct, 5);
    EXPECT_EQ(spec->linksPct, 3);
    EXPECT_EQ(spec->slowPct, 10);
    EXPECT_EQ(spec->slowFactor, 3);
    EXPECT_FALSE(spec->empty());
}

TEST(FaultSpec, ParsesExplicitIdLists)
{
    const auto spec = FaultSpec::parse("tiles:3+7,slow:1");
    ASSERT_TRUE(spec.ok()) << spec.status().toString();
    EXPECT_EQ(spec->tiles, (std::vector<int>{3, 7}));
    EXPECT_EQ(spec->slow, (std::vector<int>{1}));
    EXPECT_EQ(spec->tilesPct, 0);
}

TEST(FaultSpec, RejectsMalformedInput)
{
    EXPECT_FALSE(FaultSpec::parse("").ok());
    EXPECT_FALSE(FaultSpec::parse("tiles:150%").ok());
    EXPECT_FALSE(FaultSpec::parse("tiles:abc").ok());
    EXPECT_FALSE(FaultSpec::parse("bogus:5%").ok());
    EXPECT_FALSE(FaultSpec::parse("tiles").ok());
    EXPECT_FALSE(FaultSpec::parse("factor:1").ok());
    EXPECT_FALSE(FaultSpec::parse("factor:17").ok());
}

TEST(FaultSpec, MaterializeIsDeterministicAndBounded)
{
    const auto spec = FaultSpec::parse("seed:11,tiles:25%");
    ASSERT_TRUE(spec.ok());
    const auto first = spec->materialize(16, {}, 0);
    const auto second = spec->materialize(16, {}, 0);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first->deadCluster, second->deadCluster);
    int dead = 0;
    for (uint8_t d : first->deadCluster)
        dead += d != 0 ? 1 : 0;
    EXPECT_EQ(dead, 4);  // 25% of 16
}

TEST(FaultSpec, MaterializeRejectsBadIdsAndTotalLoss)
{
    const auto out_of_range = FaultSpec::parse("tiles:16");
    ASSERT_TRUE(out_of_range.ok());
    EXPECT_FALSE(out_of_range->materialize(16, {}, 0).ok());

    const auto kill_all = FaultSpec::parse("tiles:0");
    ASSERT_TRUE(kill_all.ok());
    EXPECT_FALSE(kill_all->materialize(1, {}, 0).ok());
}

TEST(FaultIndex, RemapsDeadClustersToAliveOnes)
{
    const auto spec = FaultSpec::parse("tiles:1");
    ASSERT_TRUE(spec.ok());
    auto map = spec->materialize(4, {}, 0);
    ASSERT_TRUE(map.ok());
    const FaultIndex index = FaultIndex::build(std::move(*map), 4);
    EXPECT_EQ(index.alive, (std::vector<int>{0, 2, 3}));
    EXPECT_EQ(index.remap[0], 0);
    EXPECT_EQ(index.remap[1], index.alive[1 % 3]);  // dead -> alive
    EXPECT_EQ(index.remap[2], 2);
}

TEST(DegradedVliw, SkipsDeadClustersAndRemapsBanks)
{
    const auto machine = tryParseMachineSpec("vliw4/faults=tiles:1");
    ASSERT_TRUE(machine.ok()) << machine.status().toString();
    EXPECT_TRUE((*machine)->degraded());
    EXPECT_EQ((*machine)->numClusters(), 4);
    EXPECT_EQ((*machine)->numAliveClusters(), 3);
    EXPECT_FALSE((*machine)->clusterAlive(1));
    EXPECT_FALSE((*machine)->canExecute(1, Opcode::IAdd));
    EXPECT_EQ((*machine)->firstAliveCluster(), 0);
    // Bank 1 is homed on the dead cluster 1; it moves to the remap
    // target, so homeOfBank never names a dead cluster.
    EXPECT_EQ((*machine)->homeOfBank(1), (*machine)->remapToAlive(1));
    EXPECT_TRUE((*machine)->clusterAlive((*machine)->homeOfBank(1)));
}

TEST(DegradedVliw, SlowedClustersStretchLatency)
{
    const auto machine =
        tryParseMachineSpec("vliw2/faults=slow:1,factor:3");
    ASSERT_TRUE(machine.ok()) << machine.status().toString();
    EXPECT_EQ((*machine)->latencyFactor(0), 1);
    EXPECT_EQ((*machine)->latencyFactor(1), 3);
    EXPECT_EQ((*machine)->execLatency(1, 2), 6);
    EXPECT_EQ((*machine)->numAliveClusters(), 2);  // slow != dead
}

TEST(DegradedRaw, RoutesDetourAroundDeadTiles)
{
    // Kill tile 5 on a 4x4 mesh: the X-then-Y route 4 -> 5 -> 6 is
    // blocked, so the route must detour (4 hops instead of 2).
    const auto spec = FaultSpec::parse("tiles:5");
    ASSERT_TRUE(spec.ok());
    auto map = spec->materialize(16, RawMachine::interiorLinks(4, 4),
                                 16 * 4);
    ASSERT_TRUE(map.ok());
    const auto machine = RawMachine::tryCreate(4, 4, std::move(*map));
    ASSERT_TRUE(machine.ok()) << machine.status().toString();
    const RawMachine &raw = **machine;

    const RawMachine pristine(4, 4);
    EXPECT_EQ(pristine.commLatency(4, 6), 4);  // 3 + (2 hops - 1)
    EXPECT_EQ(raw.commLatency(4, 6), 6);       // 3 + (4 hops - 1)

    const auto route = raw.route(4, 6);
    ASSERT_EQ(route.size(), 4u);
    for (int link : route) {
        EXPECT_TRUE(raw.linkAlive(link));
        EXPECT_NE(link / 4, 5);  // no link leaves the dead tile
    }
    // Routes between alive tiles off the blocked path are unchanged.
    EXPECT_EQ(raw.route(0, 3), pristine.route(0, 3));
}

TEST(DegradedRaw, DeadDirectedLinkIsOneWay)
{
    // Kill only the eastbound link out of tile 0 (id 0*4+0): 0 -> 1
    // must detour, 1 -> 0 still uses the direct westbound link.
    const auto spec = FaultSpec::parse("links:0");
    ASSERT_TRUE(spec.ok());
    auto map = spec->materialize(16, RawMachine::interiorLinks(4, 4),
                                 16 * 4);
    ASSERT_TRUE(map.ok());
    const auto machine = RawMachine::tryCreate(4, 4, std::move(*map));
    ASSERT_TRUE(machine.ok()) << machine.status().toString();
    EXPECT_EQ((*machine)->route(0, 1).size(), 3u);  // 0 -> 4 -> 5 -> 1
    EXPECT_EQ((*machine)->commLatency(0, 1), 5);
    EXPECT_EQ((*machine)->route(1, 0).size(), 1u);
    EXPECT_EQ((*machine)->commLatency(1, 0), 3);
}

TEST(DegradedRaw, DisconnectedMeshIsRejected)
{
    // Killing tiles 1 and 2 on a 2x2 mesh leaves 0 and 3 with no
    // alive path between them.
    EXPECT_FALSE(tryParseMachineSpec("raw2x2/faults=tiles:1+2").ok());
    const auto status =
        tryParseMachineSpec("raw2x2/faults=tiles:1+2").status();
    EXPECT_EQ(status.code(), ErrorCode::InvalidSpec);
}

TEST(MachineSpec, ParsesFaultSuffixes)
{
    EXPECT_TRUE(tryParseMachineSpec("raw8x8/faults=seed:7,tiles:5%,links:3%")
                    .ok());
    EXPECT_TRUE(tryParseMachineSpec("vliw8/faults=seed:1,clusters:25%").ok());
    // Link faults need a mesh.
    EXPECT_FALSE(tryParseMachineSpec("vliw4/faults=links:5%").ok());
    EXPECT_FALSE(tryParseMachineSpec("raw4x4/garbage=1").ok());
    EXPECT_FALSE(tryParseMachineSpec("raw4x4/faults=tiles:999").ok());
}

TEST(MachineSpec, ExtraDeadClustersDegradeTheMachine)
{
    const auto machine = tryParseMachineSpec("raw4x4", {5, 6});
    ASSERT_TRUE(machine.ok()) << machine.status().toString();
    EXPECT_EQ((*machine)->numAliveClusters(), 14);
    EXPECT_FALSE((*machine)->clusterAlive(5));
    EXPECT_FALSE((*machine)->clusterAlive(6));
    EXPECT_FALSE(tryParseMachineSpec("vliw2", {-1}).ok());
}

TEST(MachineSpec, SplitMachineListRestitchesFaultCommas)
{
    const auto specs = splitMachineList(
        "raw4x4,raw8x8/faults=seed:7,tiles:5%,links:3%,vliw4");
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0], "raw4x4");
    EXPECT_EQ(specs[1], "raw8x8/faults=seed:7,tiles:5%,links:3%");
    EXPECT_EQ(specs[2], "vliw4");

    // Invalid parts pass through so the caller's validation reports.
    const auto bad = splitMachineList("bogus,raw4");
    ASSERT_EQ(bad.size(), 2u);
    EXPECT_EQ(bad[0], "bogus");
    EXPECT_EQ(bad[1], "raw4");
}

TEST(MachineDeathTest, InvalidClusterQueries)
{
    const ClusteredVliwMachine vliw(2);
    EXPECT_DEATH(vliw.clusterFus(2), "out of range");
    const RawMachine raw(2, 2);
    EXPECT_DEATH(raw.clusterFus(-1), "out of range");
}

} // namespace
} // namespace csched
