/**
 * @file
 * Tests for the crash-safe execution layer: the append-only job
 * journal, resume-to-byte-identical-report semantics, graceful
 * shutdown (injected interrupts and real signals), and atomic file
 * replacement.
 *
 * The core guarantee under test: a grid killed at any point -- fault,
 * SIGTERM, mid-append crash -- and resumed from its journal produces
 * a final report byte-identical to an uninterrupted run, at any
 * --jobs value.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "runner/failure_summary.hh"
#include "runner/grid_runner.hh"
#include "runner/journal.hh"
#include "runner/json_report.hh"
#include "runner/shutdown.hh"
#include "support/atomic_file.hh"
#include "support/fault_injection.hh"
#include "support/logging.hh"

namespace csched {
namespace {

FaultPlan
mustParse(const std::string &text)
{
    std::string error;
    const auto plan = FaultPlan::parse(text, &error);
    EXPECT_TRUE(plan.has_value()) << error;
    return plan.value_or(FaultPlan());
}

/** Interrupt tests must not leak shutdown state into later tests. */
struct InterruptGuard
{
    InterruptGuard() { clearInterrupt(); }
    ~InterruptGuard() { clearInterrupt(); }
};

std::string
tempPath(const std::string &name)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + info->test_suite_name() + "-" +
           info->name() + "-" + name;
}

GridSpec
smallGrid(int jobs = 2)
{
    GridSpec grid;
    grid.workloads = {"vvmul", "fir"};
    grid.machines = {"vliw2"};
    grid.algorithms = {*parseAlgorithmSpec("uas"),
                       *parseAlgorithmSpec("convergent")};
    grid.jobs = jobs;
    return grid;
}

std::string
deterministicJson(const GridReport &report)
{
    ReportOptions options;
    options.timings = false;
    return gridReportToJson(report, options);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(JobJournal, RecordsEveryTerminalOutcome)
{
    InterruptGuard guard;
    const std::string path = tempPath("journal.jsonl");
    auto grid = smallGrid();
    grid.journalPath = path;
    const auto report = runGrid(grid);
    ASSERT_TRUE(report.allOk());

    const auto replay = loadJournal(path, gridFingerprint(grid));
    ASSERT_TRUE(replay.ok()) << replay.status().toString();
    EXPECT_EQ(replay->results.size(), report.results.size());
    EXPECT_EQ(replay->ignoredLines, 0);
    EXPECT_FALSE(replay->rewriteHeader);

    // Every journaled result round-trips exactly.
    const auto jobs = expandGrid(grid);
    for (size_t k = 0; k < jobs.size(); ++k) {
        const auto it = replay->results.find(jobKey(jobs[k]));
        ASSERT_NE(it, replay->results.end()) << jobKey(jobs[k]);
        GridReport replayed = report;
        replayed.results[k] = it->second;
        EXPECT_EQ(deterministicJson(replayed),
                  deterministicJson(report));
    }
}

TEST(JobJournal, RefusesAJournalFromADifferentGrid)
{
    InterruptGuard guard;
    const std::string path = tempPath("journal.jsonl");
    auto grid = smallGrid();
    grid.journalPath = path;
    runGrid(grid);

    auto other = grid;
    other.retries = 3;  // policy is part of the fingerprint
    const auto replay = loadJournal(path, gridFingerprint(other));
    ASSERT_FALSE(replay.ok());
    EXPECT_EQ(replay.status().code(), ErrorCode::InvalidSpec);
}

TEST(JobJournal, MissingFileIsAnEmptyReplay)
{
    const auto replay =
        loadJournal(tempPath("nonexistent.jsonl"), "fp");
    ASSERT_TRUE(replay.ok());
    EXPECT_TRUE(replay->results.empty());
    EXPECT_TRUE(replay->rewriteHeader);
}

/** Interrupt the grid via the deterministic fault point, journaling
 * what completed, then resume to a byte-identical report. */
void
checkInjectedInterruptResume(int interrupted_jobs, int resumed_jobs)
{
    InterruptGuard guard;
    const std::string path =
        tempPath("journal-" + std::to_string(interrupted_jobs) + "-" +
                 std::to_string(resumed_jobs) + ".jsonl");

    const auto baseline = runGrid(smallGrid());
    ASSERT_TRUE(baseline.allOk());

    // fir/vliw2/convergent pulls the plug the moment it starts; every
    // job not yet finished comes back `interrupted`.
    const auto plan =
        mustParse("runner.interrupt=fail:match=fir/vliw2/convergent");
    auto interrupted = smallGrid(interrupted_jobs);
    interrupted.journalPath = path;
    interrupted.faults = &plan;
    const auto partial = runGrid(interrupted);
    EXPECT_TRUE(partial.interrupted);
    EXPECT_GT(partial.summary.interrupted, 0);
    EXPECT_LT(partial.summary.ok, partial.summary.total);
    EXPECT_FALSE(partial.allOk());
    EXPECT_EQ(gridExitCode(partial, /*keep_going=*/true), 130);

    // The partial report itself says so in its serialized form.
    EXPECT_NE(deterministicJson(partial).find("\"interrupted\": true"),
              std::string::npos);

    clearInterrupt();
    auto resumed_grid = smallGrid(resumed_jobs);
    resumed_grid.journalPath = path;
    resumed_grid.resume = true;
    const auto resumed = runGrid(resumed_grid);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_GT(resumed.replayed, 0);
    EXPECT_EQ(resumed.replayed, partial.summary.ok);
    EXPECT_EQ(deterministicJson(resumed), deterministicJson(baseline));
}

TEST(Resume, ByteIdenticalAfterInjectedInterruptSerial)
{
    checkInjectedInterruptResume(1, 1);
}

TEST(Resume, ByteIdenticalAfterInjectedInterruptParallel)
{
    checkInjectedInterruptResume(8, 8);
}

TEST(Resume, ByteIdenticalAcrossDifferentThreadCounts)
{
    checkInjectedInterruptResume(1, 8);
}

TEST(Resume, ToleratesTruncatedAndGarbageTrailingRecords)
{
    InterruptGuard guard;
    const std::string path = tempPath("journal.jsonl");

    const auto baseline = runGrid(smallGrid());

    const auto plan =
        mustParse("runner.interrupt=fail:match=fir/vliw2/convergent");
    auto interrupted = smallGrid();
    interrupted.journalPath = path;
    interrupted.faults = &plan;
    const auto partial = runGrid(interrupted);
    ASSERT_TRUE(partial.interrupted);
    ASSERT_GT(partial.summary.ok, 0);

    // Simulate a crash mid-append: a garbled line plus a record cut
    // off halfway, with no trailing newline.
    {
        std::ofstream out(path, std::ios::app);
        out << "{\"key\": \"not even json\n";
        const auto jobs = expandGrid(interrupted);
        const std::string line =
            journalRecordLine(jobs[0], partial.results[0]);
        out << line.substr(0, line.size() / 2);
    }

    const auto replay =
        loadJournal(path, gridFingerprint(interrupted));
    ASSERT_TRUE(replay.ok()) << replay.status().toString();
    EXPECT_EQ(replay->ignoredLines, 2);

    clearInterrupt();
    auto resumed_grid = smallGrid();
    resumed_grid.journalPath = path;
    resumed_grid.resume = true;
    const auto resumed = runGrid(resumed_grid);
    EXPECT_EQ(deterministicJson(resumed), deterministicJson(baseline));
}

TEST(Resume, InjectedAppendCrashLeavesAResumableJournal)
{
    InterruptGuard guard;
    const std::string path = tempPath("journal.jsonl");

    const auto baseline = runGrid(smallGrid());

    // The append for one job's record "crashes" halfway: the job
    // itself still ran and is reported, but its record is truncated.
    const auto plan = mustParse(
        "journal.append=fail:match=vvmul/vliw2/uas/journal");
    auto grid = smallGrid();
    grid.journalPath = path;
    grid.faults = &plan;
    const auto report = runGrid(grid);
    EXPECT_TRUE(report.allOk());
    EXPECT_EQ(deterministicJson(report), deterministicJson(baseline));

    // The loader skips the half-written record; only that job re-runs.
    const auto replay = loadJournal(path, gridFingerprint(grid));
    ASSERT_TRUE(replay.ok()) << replay.status().toString();
    EXPECT_EQ(replay->ignoredLines, 1);
    EXPECT_EQ(replay->results.size(), report.results.size() - 1);
    EXPECT_EQ(replay->results.count("vvmul/vliw2/uas"), 0u);

    auto resumed_grid = smallGrid();
    resumed_grid.journalPath = path;
    resumed_grid.resume = true;
    const auto resumed = runGrid(resumed_grid);
    EXPECT_EQ(resumed.replayed,
              static_cast<int>(report.results.size()) - 1);
    EXPECT_EQ(deterministicJson(resumed), deterministicJson(baseline));
}

TEST(Shutdown, RealSigtermDrainsJournalsAndResumes)
{
    InterruptGuard guard;
    const std::string path = tempPath("journal.jsonl");

    const auto baseline = runGrid(smallGrid());

    // Slow every job down so the signal lands mid-grid, then deliver
    // a real SIGTERM through the installed handler.
    const auto plan = mustParse("runner.job.start=slow:ms=100");
    auto grid = smallGrid(1);
    grid.journalPath = path;
    grid.faults = &plan;
    installGridSignalHandlers();
    std::thread killer([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        ::kill(::getpid(), SIGTERM);
    });
    const auto partial = runGrid(grid);
    killer.join();

    EXPECT_TRUE(partial.interrupted);
    EXPECT_GT(partial.summary.interrupted, 0);
    EXPECT_EQ(interruptSignal(), SIGTERM);
    EXPECT_EQ(gridExitCode(partial, /*keep_going=*/false), 143);

    clearInterrupt();
    auto resumed_grid = smallGrid();
    resumed_grid.journalPath = path;
    resumed_grid.resume = true;
    const auto resumed = runGrid(resumed_grid);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(deterministicJson(resumed), deterministicJson(baseline));
}

TEST(Shutdown, HandlerIsSafeWhileTheLogMutexIsHeld)
{
    // Regression guard for the async-signal-safety audit in
    // runner/shutdown.cc: the handler may run on a thread that is
    // mid-log with the logging mutex held.  A handler that logged (or
    // took any lock) would self-deadlock right here; a safe handler
    // just flips the lock-free flags.
    InterruptGuard guard;
    installGridSignalHandlers();
    {
        std::lock_guard<std::mutex> mid_log(logMutexForTesting());
        ASSERT_EQ(std::raise(SIGTERM), 0);
    }
    EXPECT_TRUE(interruptRequested());
    EXPECT_EQ(interruptSignal(), SIGTERM);
    // The handler resets the disposition to SIG_DFL after one shot
    // (second-signal-kills contract); nothing to restore here --
    // later tests reinstall the handlers themselves.
}

TEST(Shutdown, ExitCodeContract)
{
    EXPECT_EQ(interruptExitCode(SIGINT), 130);
    EXPECT_EQ(interruptExitCode(SIGTERM), 143);
    // Interrupt without a recorded signal (pure fault injection)
    // reports as a SIGINT-style exit.
    EXPECT_EQ(interruptExitCode(0), 130);
}

TEST(Shutdown, NamesRoundTrip)
{
    EXPECT_EQ(parseJobOutcomeName("interrupted"),
              JobOutcome::Interrupted);
    EXPECT_EQ(parseJobOutcomeName("ok"), JobOutcome::Ok);
    EXPECT_FALSE(parseJobOutcomeName("nonesuch").has_value());
    EXPECT_EQ(parseErrorCodeName("interrupted"),
              ErrorCode::Interrupted);
    EXPECT_FALSE(parseErrorCodeName("nonesuch").has_value());
}

TEST(AtomicFile, ReplacesContentsAndCleansUp)
{
    const std::string path = tempPath("report.json");
    ASSERT_TRUE(writeFileAtomic(path, "first\n").ok());
    EXPECT_EQ(readFile(path), "first\n");
    ASSERT_TRUE(writeFileAtomic(path, "second\n").ok());
    EXPECT_EQ(readFile(path), "second\n");
    EXPECT_NE(::access(path.c_str(), F_OK), -1);
    EXPECT_EQ(::access(atomicTempPath(path).c_str(), F_OK), -1);
}

TEST(AtomicFile, InjectedCrashLeavesDestinationUntouched)
{
    const std::string path = tempPath("report.json");
    ASSERT_TRUE(writeFileAtomic(path, "precious\n").ok());

    const auto plan = mustParse("report.write=fail");
    FaultScope scope(&plan, "report");
    ScopedFaultScope scope_guard(&scope);
    const Status status = writeFileAtomic(path, "clobber\n");
    EXPECT_FALSE(status.ok());
    // Old contents intact; only the staging file is orphaned.
    EXPECT_EQ(readFile(path), "precious\n");
    EXPECT_EQ(readFile(atomicTempPath(path)), "clobber\n");
}

} // namespace
} // namespace csched
