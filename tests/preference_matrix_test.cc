/**
 * @file
 * Unit and property tests for the preference matrix: the paper's
 * invariants, marginals, preferred slots, confidence, and the basic
 * operations of Section 3, exercised through the batched RowView API.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "convergent/preference_matrix.hh"
#include "support/rng.hh"

namespace csched {
namespace {

/** Sum of all weights of instruction @p i via the compat read path. */
double
rowSum(const PreferenceMatrix &w, InstrId i)
{
    double sum = 0.0;
    for (int t = 0; t < w.numTimes(); ++t)
        for (int c = 0; c < w.numClusters(); ++c)
            sum += w.at(i, t, c);
    return sum;
}

TEST(PreferenceMatrix, StartsUniformAndNormalised)
{
    const PreferenceMatrix w(3, 5, 4);
    const double expected = 1.0 / 20.0;
    for (InstrId i = 0; i < 3; ++i) {
        EXPECT_NEAR(rowSum(w, i), 1.0, 1e-12);
        EXPECT_NEAR(w.at(i, 0, 0), expected, 1e-12);
        EXPECT_NEAR(w.at(i, 4, 3), expected, 1e-12);
    }
}

TEST(PreferenceMatrix, MarginalsMatchBruteForce)
{
    PreferenceMatrix w(1, 4, 3);
    Rng rng(3);
    auto row = w.row(0);
    for (int t = 0; t < 4; ++t)
        for (int c = 0; c < 3; ++c)
            row.set(t, c, rng.uniform());
    for (int c = 0; c < 3; ++c) {
        double expected = 0.0;
        for (int t = 0; t < 4; ++t)
            expected += w.at(0, t, c);
        EXPECT_NEAR(w.spaceMarginal(0, c), expected, 1e-12);
    }
    for (int t = 0; t < 4; ++t) {
        double expected = 0.0;
        for (int c = 0; c < 3; ++c)
            expected += w.at(0, t, c);
        EXPECT_NEAR(w.timeMarginal(0, t), expected, 1e-12);
    }
}

TEST(PreferenceMatrix, ScaleClusterAffectsWholeColumn)
{
    PreferenceMatrix w(1, 3, 2);
    w.row(0).scaleCluster(1, 4.0);
    for (int t = 0; t < 3; ++t) {
        EXPECT_NEAR(w.at(0, t, 1), 4.0 / 6.0, 1e-12);
        EXPECT_NEAR(w.at(0, t, 0), 1.0 / 6.0, 1e-12);
    }
    EXPECT_EQ(w.preferredCluster(0), 1);
}

TEST(PreferenceMatrix, ScaleClustersAppliesPerClusterFactors)
{
    PreferenceMatrix w(1, 2, 3);
    const double factors[3] = {1.0, 2.0, 4.0};
    w.row(0).scaleClusters(factors);
    for (int t = 0; t < 2; ++t) {
        EXPECT_NEAR(w.at(0, t, 0), 1.0 / 6.0, 1e-12);
        EXPECT_NEAR(w.at(0, t, 1), 2.0 / 6.0, 1e-12);
        EXPECT_NEAR(w.at(0, t, 2), 4.0 / 6.0, 1e-12);
    }
    EXPECT_EQ(w.preferredCluster(0), 2);
}

TEST(PreferenceMatrix, ScaleTimeAffectsWholeRow)
{
    PreferenceMatrix w(1, 3, 2);
    w.row(0).scaleTime(2, 5.0);
    EXPECT_EQ(w.preferredTime(0), 2);
    EXPECT_NEAR(w.at(0, 2, 0), 5.0 / 6.0, 1e-12);
}

TEST(PreferenceMatrix, NormalizeRestoresInvariant)
{
    PreferenceMatrix w(1, 2, 2);
    auto row = w.row(0);
    row.set(0, 0, 3.0);
    row.set(1, 1, 1.0);
    row.normalize();
    EXPECT_NEAR(rowSum(w, 0), 1.0, 1e-12);
    EXPECT_GT(w.at(0, 0, 0), w.at(0, 1, 1));
}

TEST(PreferenceMatrix, NormalizeOfAllZeroResetsToUniform)
{
    PreferenceMatrix w(1, 2, 2);
    auto row = w.row(0);
    for (int t = 0; t < 2; ++t)
        for (int c = 0; c < 2; ++c)
            row.set(t, c, 0.0);
    row.normalize();
    EXPECT_NEAR(w.at(0, 1, 1), 0.25, 1e-12);
}

TEST(PreferenceMatrix, NormalizeOfCleanRowIsANoOp)
{
    PreferenceMatrix w(1, 3, 2);
    auto row = w.row(0);
    row.scaleCluster(1, 3.0);
    row.normalize();
    const double before = w.at(0, 1, 1);
    row.normalize();  // clean: must not rescale
    EXPECT_EQ(w.at(0, 1, 1), before);
    row.scaleCluster(1, 2.0);  // mutation clears the clean flag
    row.normalize();
    EXPECT_NEAR(rowSum(w, 0), 1.0, 1e-12);
}

TEST(PreferenceMatrix, RestrictTimeWindowZeroesOutsideSlots)
{
    PreferenceMatrix w(1, 6, 2);
    auto row = w.row(0);
    row.restrictTimeWindow(2, 5);
    EXPECT_EQ(row.windowLo(), 2);
    EXPECT_EQ(row.windowHi(), 5);
    for (int c = 0; c < 2; ++c) {
        EXPECT_EQ(w.at(0, 0, c), 0.0);
        EXPECT_EQ(w.at(0, 1, c), 0.0);
        EXPECT_EQ(w.at(0, 5, c), 0.0);
        EXPECT_GT(w.at(0, 2, c), 0.0);
        EXPECT_GT(w.at(0, 4, c), 0.0);
    }
    row.normalize();
    EXPECT_NEAR(rowSum(w, 0), 1.0, 1e-12);
    // Marginals outside the window are exactly zero.
    EXPECT_EQ(w.timeMarginal(0, 0), 0.0);
    EXPECT_GT(w.timeMarginal(0, 3), 0.0);
}

TEST(PreferenceMatrix, EmptyWindowResetsToUniformOnNormalize)
{
    PreferenceMatrix w(1, 4, 2);
    auto row = w.row(0);
    row.restrictTimeWindow(3, 3);  // empty: whole row squashed
    EXPECT_NEAR(rowSum(w, 0), 0.0, 1e-300);
    row.normalize();
    EXPECT_NEAR(w.at(0, 0, 0), 1.0 / 8.0, 1e-12);
    EXPECT_EQ(row.windowLo(), 0);
    EXPECT_EQ(row.windowHi(), 4);
}

TEST(PreferenceMatrix, SetOutsideWindowWidensIt)
{
    PreferenceMatrix w(1, 8, 1);
    auto row = w.row(0);
    row.restrictTimeWindow(2, 4);
    row.set(6, 0, 0.5);
    EXPECT_LE(row.windowLo(), 2);
    EXPECT_GE(row.windowHi(), 7);
    EXPECT_NEAR(w.timeMarginal(0, 6), 0.5, 1e-12);
    EXPECT_EQ(w.timeMarginal(0, 5), 0.0);
}

TEST(PreferenceMatrix, ZeroClusterClearsColumn)
{
    PreferenceMatrix w(1, 3, 2);
    w.row(0).zeroCluster(0);
    for (int t = 0; t < 3; ++t)
        EXPECT_EQ(w.at(0, t, 0), 0.0);
    EXPECT_EQ(w.spaceMarginal(0, 0), 0.0);
    EXPECT_EQ(w.preferredCluster(0), 1);
}

TEST(PreferenceMatrix, AddPositiveNoiseSkipsZeros)
{
    PreferenceMatrix w(1, 4, 2);
    Rng rng(11);
    auto row = w.row(0);
    row.restrictTimeWindow(1, 3);
    row.zeroCluster(0);
    row.addPositiveNoise(rng, 0.5);
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(w.at(0, t, 0), 0.0);  // zeros stay zero
    EXPECT_GT(w.at(0, 1, 1), 1.0 / 8.0);  // positives grew
    EXPECT_EQ(w.at(0, 0, 1), 0.0);
}

TEST(PreferenceMatrix, PreferredAndRunnerUp)
{
    PreferenceMatrix w(1, 1, 3);
    auto row = w.row(0);
    row.set(0, 0, 0.2);
    row.set(0, 1, 0.5);
    row.set(0, 2, 0.3);
    EXPECT_EQ(w.preferredCluster(0), 1);
    EXPECT_EQ(w.runnerUpCluster(0), 2);
    EXPECT_NEAR(w.confidence(0), 0.5 / 0.3, 1e-12);
}

TEST(PreferenceMatrix, ConfidenceOfSingleClusterMachineIsOne)
{
    const PreferenceMatrix w(1, 4, 1);
    EXPECT_EQ(w.runnerUpCluster(0), 0);
    EXPECT_DOUBLE_EQ(w.confidence(0), 1.0);
}

TEST(PreferenceMatrix, ConfidenceWithZeroRunnerUpIsLargeFinite)
{
    PreferenceMatrix w(1, 1, 2);
    auto row = w.row(0);
    row.set(0, 0, 1.0);
    row.set(0, 1, 0.0);
    EXPECT_GT(w.confidence(0), 1e6);
}

TEST(PreferenceMatrix, BlendIsConvexCombination)
{
    PreferenceMatrix w(2, 1, 2);
    auto a = w.row(0);
    auto b = w.row(1);
    a.set(0, 0, 1.0);
    a.set(0, 1, 0.0);
    b.set(0, 0, 0.0);
    b.set(0, 1, 1.0);
    a.blendFrom(b, 0.25);  // keep 25% of own weights
    EXPECT_NEAR(w.at(0, 0, 0), 0.25, 1e-12);
    EXPECT_NEAR(w.at(0, 0, 1), 0.75, 1e-12);
    // The source row is untouched.
    EXPECT_NEAR(w.at(1, 0, 1), 1.0, 1e-12);
}

TEST(PreferenceMatrix, BlendOfNormalisedRowsStaysNormalised)
{
    PreferenceMatrix w(2, 3, 3);
    auto a = w.row(0);
    auto b = w.row(1);
    a.scaleCluster(0, 9.0);
    a.normalize();
    b.scaleCluster(2, 9.0);
    b.normalize();
    a.blendFrom(b, 0.5);
    EXPECT_NEAR(rowSum(w, 0), 1.0, 1e-12);
}

TEST(PreferenceMatrix, BlendWidensWindowToUnion)
{
    PreferenceMatrix w(2, 8, 1);
    auto a = w.row(0);
    auto b = w.row(1);
    a.restrictTimeWindow(0, 3);
    a.normalize();
    b.restrictTimeWindow(5, 8);
    b.normalize();
    a.blendFrom(b, 0.5);
    EXPECT_LE(a.windowLo(), 0);
    EXPECT_GE(a.windowHi(), 8);
    EXPECT_GT(w.at(0, 6, 0), 0.0);  // mass arrived from the source
}

TEST(PreferenceMatrix, ExpectedTimeOfSymmetricRowIsCentre)
{
    const PreferenceMatrix w(1, 5, 2);
    EXPECT_EQ(w.expectedTime(0), 2);
}

TEST(PreferenceMatrix, ExpectedTimeFollowsMass)
{
    PreferenceMatrix w(1, 6, 1);
    w.row(0).scaleTime(5, 50.0);
    EXPECT_EQ(w.preferredTime(0), 5);
    EXPECT_GE(w.expectedTime(0), 4);
}

TEST(PreferenceMatrix, PreferredVectorsMatchScalars)
{
    PreferenceMatrix w(3, 2, 2);
    w.row(1).scaleCluster(1, 10.0);
    w.row(2).scaleTime(1, 10.0);
    const auto clusters = w.preferredClusters();
    const auto times = w.preferredTimes();
    for (InstrId i = 0; i < 3; ++i) {
        EXPECT_EQ(clusters[i], w.preferredCluster(i));
        EXPECT_EQ(times[i], w.preferredTime(i));
    }
}

TEST(PreferenceMatrix, WindowSpanExposesContiguousClusterBlock)
{
    PreferenceMatrix w(1, 6, 2);
    auto row = w.row(0);
    row.restrictTimeWindow(1, 4);
    row.normalize();
    const PreferenceMatrix &cw = w;
    const auto view = cw.row(0);
    const auto span = view.windowSpan(1);
    ASSERT_EQ(span.size(), 3u);
    for (size_t k = 0; k < span.size(); ++k)
        EXPECT_EQ(span[k],
                  w.at(0, view.windowLo() + static_cast<int>(k), 1));
}

TEST(PreferenceMatrix, MatrixViewRoundTrips)
{
    PreferenceMatrix w(2, 3, 2);
    auto view = w.view();
    EXPECT_EQ(view.numInstructions(), 2);
    view.row(0).scaleCluster(1, 5.0);
    view.normalizeAll();
    EXPECT_EQ(view.constRow(0).preferredCluster(), 1);
    EXPECT_NEAR(rowSum(w, 0), 1.0, 1e-12);
}

TEST(PreferenceMatrix, CopyIsIndependent)
{
    PreferenceMatrix w(1, 4, 2);
    auto row = w.row(0);
    row.restrictTimeWindow(1, 3);
    row.normalize();
    PreferenceMatrix copy = w;
    copy.row(0).scaleCluster(0, 100.0);
    copy.row(0).normalize();
    EXPECT_NEAR(rowSum(w, 0), 1.0, 1e-12);
    EXPECT_EQ(w.at(0, 1, 0), copy.at(0, 1, 0) == w.at(0, 1, 0)
                                 ? copy.at(0, 1, 0)
                                 : w.at(0, 1, 0));
    // The copy preserved the window bookkeeping.
    const PreferenceMatrix &cc = copy;
    EXPECT_EQ(cc.row(0).windowLo(), 1);
    EXPECT_EQ(cc.row(0).windowHi(), 3);
    EXPECT_EQ(copy.at(0, 0, 0), 0.0);
}

/**
 * Property test: any sequence of the Section-3 operations followed by
 * normalization maintains the invariants.
 */
TEST(PreferenceMatrixProperty, RandomOperationsKeepInvariants)
{
    Rng rng(777);
    for (int round = 0; round < 20; ++round) {
        const int n = 1 + rng.range(6);
        const int times = 1 + rng.range(8);
        const int clusters = 1 + rng.range(5);
        PreferenceMatrix w(n, times, clusters);
        for (int step = 0; step < 50; ++step) {
            const InstrId i = rng.range(n);
            auto row = w.row(i);
            switch (rng.range(7)) {
              case 0:
                row.scaleSlot(rng.range(times), rng.range(clusters),
                              rng.uniform() * 3.0);
                break;
              case 1:
                row.scaleCluster(rng.range(clusters),
                                 rng.uniform() * 3.0);
                break;
              case 2:
                row.scaleTime(rng.range(times), rng.uniform() * 3.0);
                break;
              case 3:
                row.blendFrom(w.row(rng.range(n)), rng.uniform());
                break;
              case 4:
                row.set(rng.range(times), rng.range(clusters),
                        rng.uniform());
                break;
              case 5: {
                const int lo = rng.range(times);
                row.restrictTimeWindow(lo, lo + 1 + rng.range(times));
                break;
              }
              case 6:
                row.addPositiveNoise(rng, rng.uniform());
                break;
            }
            row.normalize();
        }
        w.normalizeAll();
        for (InstrId i = 0; i < n; ++i) {
            EXPECT_NEAR(rowSum(w, i), 1.0, 1e-9);
            double max_weight = 0.0;
            for (int t = 0; t < times; ++t)
                for (int c = 0; c < clusters; ++c) {
                    EXPECT_GE(w.at(i, t, c), 0.0);
                    max_weight = std::max(max_weight, w.at(i, t, c));
                }
            EXPECT_LE(max_weight, 1.0 + 1e-9);
            // Preferred slots are consistent with marginals.
            const int pc = w.preferredCluster(i);
            for (int c = 0; c < clusters; ++c)
                EXPECT_LE(w.spaceMarginal(i, c),
                          w.spaceMarginal(i, pc) + 1e-12);
            // Nothing outside the feasible window carries weight.
            const PreferenceMatrix &cw = w;
            const auto view = cw.row(i);
            for (int t = 0; t < view.windowLo(); ++t)
                for (int c = 0; c < clusters; ++c)
                    EXPECT_EQ(w.at(i, t, c), 0.0);
            for (int t = view.windowHi(); t < times; ++t)
                for (int c = 0; c < clusters; ++c)
                    EXPECT_EQ(w.at(i, t, c), 0.0);
        }
    }
}

// The same mutation sequence the removed per-element shims used to
// cover, spelled natively in RowView: the coverage survives the
// compatibility surface it was written for.
TEST(PreferenceMatrixCompat, RowViewMutationSequence)
{
    PreferenceMatrix w(2, 2, 2);
    w.row(0).set(0, 0, 3.0);
    w.row(0).scaleSlot(0, 0, 2.0);
    w.row(0).scaleCluster(1, 0.5);
    w.row(0).scaleTime(1, 0.25);
    w.row(0).normalize();
    EXPECT_NEAR(rowSum(w, 0), 1.0, 1e-12);
    w.row(1).blendFrom(w.row(0), 0.5);
    w.row(1).normalize();
    EXPECT_NEAR(rowSum(w, 1), 1.0, 1e-12);
    EXPECT_EQ(w.preferredCluster(0), 0);
}

TEST(PreferenceMatrixDeathTest, RejectsNegativeWeight)
{
    PreferenceMatrix w(1, 1, 1);
    EXPECT_DEATH(w.row(0).set(0, 0, -0.5), "negative");
}

TEST(PreferenceMatrixDeathTest, RejectsOutOfRange)
{
    PreferenceMatrix w(1, 2, 2);
    EXPECT_DEATH(w.at(0, 2, 0), "out of range");
    EXPECT_DEATH(w.at(1, 0, 0), "out of range");
}

} // namespace
} // namespace csched
