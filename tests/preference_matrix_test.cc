/**
 * @file
 * Unit and property tests for the preference matrix: the paper's
 * invariants, marginals, preferred slots, confidence, and the basic
 * operations of Section 3.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "convergent/preference_matrix.hh"
#include "support/rng.hh"

namespace csched {
namespace {

/** Sum of all weights of instruction @p i. */
double
rowSum(const PreferenceMatrix &w, InstrId i)
{
    double sum = 0.0;
    for (int t = 0; t < w.numTimes(); ++t)
        for (int c = 0; c < w.numClusters(); ++c)
            sum += w.at(i, t, c);
    return sum;
}

TEST(PreferenceMatrix, StartsUniformAndNormalised)
{
    const PreferenceMatrix w(3, 5, 4);
    const double expected = 1.0 / 20.0;
    for (InstrId i = 0; i < 3; ++i) {
        EXPECT_NEAR(rowSum(w, i), 1.0, 1e-12);
        EXPECT_NEAR(w.at(i, 0, 0), expected, 1e-12);
        EXPECT_NEAR(w.at(i, 4, 3), expected, 1e-12);
    }
}

TEST(PreferenceMatrix, MarginalsMatchBruteForce)
{
    PreferenceMatrix w(1, 4, 3);
    Rng rng(3);
    for (int t = 0; t < 4; ++t)
        for (int c = 0; c < 3; ++c)
            w.set(0, t, c, rng.uniform());
    for (int c = 0; c < 3; ++c) {
        double expected = 0.0;
        for (int t = 0; t < 4; ++t)
            expected += w.at(0, t, c);
        EXPECT_NEAR(w.spaceMarginal(0, c), expected, 1e-12);
    }
    for (int t = 0; t < 4; ++t) {
        double expected = 0.0;
        for (int c = 0; c < 3; ++c)
            expected += w.at(0, t, c);
        EXPECT_NEAR(w.timeMarginal(0, t), expected, 1e-12);
    }
}

TEST(PreferenceMatrix, ScaleClusterAffectsWholeColumn)
{
    PreferenceMatrix w(1, 3, 2);
    w.scaleCluster(0, 1, 4.0);
    for (int t = 0; t < 3; ++t) {
        EXPECT_NEAR(w.at(0, t, 1), 4.0 / 6.0, 1e-12);
        EXPECT_NEAR(w.at(0, t, 0), 1.0 / 6.0, 1e-12);
    }
    EXPECT_EQ(w.preferredCluster(0), 1);
}

TEST(PreferenceMatrix, ScaleTimeAffectsWholeRow)
{
    PreferenceMatrix w(1, 3, 2);
    w.scaleTime(0, 2, 5.0);
    EXPECT_EQ(w.preferredTime(0), 2);
    EXPECT_NEAR(w.at(0, 2, 0), 5.0 / 6.0, 1e-12);
}

TEST(PreferenceMatrix, NormalizeRestoresInvariant)
{
    PreferenceMatrix w(1, 2, 2);
    w.set(0, 0, 0, 3.0);
    w.set(0, 1, 1, 1.0);
    w.normalize(0);
    EXPECT_NEAR(rowSum(w, 0), 1.0, 1e-12);
    EXPECT_GT(w.at(0, 0, 0), w.at(0, 1, 1));
}

TEST(PreferenceMatrix, NormalizeOfAllZeroResetsToUniform)
{
    PreferenceMatrix w(1, 2, 2);
    for (int t = 0; t < 2; ++t)
        for (int c = 0; c < 2; ++c)
            w.set(0, t, c, 0.0);
    w.normalize(0);
    EXPECT_NEAR(w.at(0, 1, 1), 0.25, 1e-12);
}

TEST(PreferenceMatrix, PreferredAndRunnerUp)
{
    PreferenceMatrix w(1, 1, 3);
    w.set(0, 0, 0, 0.2);
    w.set(0, 0, 1, 0.5);
    w.set(0, 0, 2, 0.3);
    EXPECT_EQ(w.preferredCluster(0), 1);
    EXPECT_EQ(w.runnerUpCluster(0), 2);
    EXPECT_NEAR(w.confidence(0), 0.5 / 0.3, 1e-12);
}

TEST(PreferenceMatrix, ConfidenceOfSingleClusterMachineIsOne)
{
    const PreferenceMatrix w(1, 4, 1);
    EXPECT_EQ(w.runnerUpCluster(0), 0);
    EXPECT_DOUBLE_EQ(w.confidence(0), 1.0);
}

TEST(PreferenceMatrix, ConfidenceWithZeroRunnerUpIsLargeFinite)
{
    PreferenceMatrix w(1, 1, 2);
    w.set(0, 0, 0, 1.0);
    w.set(0, 0, 1, 0.0);
    EXPECT_GT(w.confidence(0), 1e6);
}

TEST(PreferenceMatrix, BlendIsConvexCombination)
{
    PreferenceMatrix w(2, 1, 2);
    w.set(0, 0, 0, 1.0);
    w.set(0, 0, 1, 0.0);
    w.set(1, 0, 0, 0.0);
    w.set(1, 0, 1, 1.0);
    w.blend(0, 1, 0.25);  // keep 25% of own weights
    EXPECT_NEAR(w.at(0, 0, 0), 0.25, 1e-12);
    EXPECT_NEAR(w.at(0, 0, 1), 0.75, 1e-12);
    // The source row is untouched.
    EXPECT_NEAR(w.at(1, 0, 1), 1.0, 1e-12);
}

TEST(PreferenceMatrix, BlendOfNormalisedRowsStaysNormalised)
{
    PreferenceMatrix w(2, 3, 3);
    w.scaleCluster(0, 0, 9.0);
    w.normalize(0);
    w.scaleCluster(1, 2, 9.0);
    w.normalize(1);
    w.blend(0, 1, 0.5);
    EXPECT_NEAR(rowSum(w, 0), 1.0, 1e-12);
}

TEST(PreferenceMatrix, ExpectedTimeOfSymmetricRowIsCentre)
{
    const PreferenceMatrix w(1, 5, 2);
    EXPECT_EQ(w.expectedTime(0), 2);
}

TEST(PreferenceMatrix, ExpectedTimeFollowsMass)
{
    PreferenceMatrix w(1, 6, 1);
    w.scaleTime(0, 5, 50.0);
    EXPECT_EQ(w.preferredTime(0), 5);
    EXPECT_GE(w.expectedTime(0), 4);
}

TEST(PreferenceMatrix, PreferredVectorsMatchScalars)
{
    PreferenceMatrix w(3, 2, 2);
    w.scaleCluster(1, 1, 10.0);
    w.scaleTime(2, 1, 10.0);
    const auto clusters = w.preferredClusters();
    const auto times = w.preferredTimes();
    for (InstrId i = 0; i < 3; ++i) {
        EXPECT_EQ(clusters[i], w.preferredCluster(i));
        EXPECT_EQ(times[i], w.preferredTime(i));
    }
}

/**
 * Property test: any sequence of the Section-3 operations followed by
 * normalization maintains the invariants.
 */
TEST(PreferenceMatrixProperty, RandomOperationsKeepInvariants)
{
    Rng rng(777);
    for (int round = 0; round < 20; ++round) {
        const int n = 1 + rng.range(6);
        const int times = 1 + rng.range(8);
        const int clusters = 1 + rng.range(5);
        PreferenceMatrix w(n, times, clusters);
        for (int step = 0; step < 50; ++step) {
            const InstrId i = rng.range(n);
            switch (rng.range(5)) {
              case 0:
                w.scale(i, rng.range(times), rng.range(clusters),
                        rng.uniform() * 3.0);
                break;
              case 1:
                w.scaleCluster(i, rng.range(clusters),
                               rng.uniform() * 3.0);
                break;
              case 2:
                w.scaleTime(i, rng.range(times), rng.uniform() * 3.0);
                break;
              case 3:
                w.blend(i, rng.range(n), rng.uniform());
                break;
              case 4:
                w.set(i, rng.range(times), rng.range(clusters),
                      rng.uniform());
                break;
            }
            w.normalize(i);
        }
        w.normalizeAll();
        for (InstrId i = 0; i < n; ++i) {
            EXPECT_NEAR(rowSum(w, i), 1.0, 1e-9);
            double max_weight = 0.0;
            for (int t = 0; t < times; ++t)
                for (int c = 0; c < clusters; ++c) {
                    EXPECT_GE(w.at(i, t, c), 0.0);
                    max_weight = std::max(max_weight, w.at(i, t, c));
                }
            EXPECT_LE(max_weight, 1.0 + 1e-9);
            // Preferred slots are consistent with marginals.
            const int pc = w.preferredCluster(i);
            for (int c = 0; c < clusters; ++c)
                EXPECT_LE(w.spaceMarginal(i, c),
                          w.spaceMarginal(i, pc) + 1e-12);
        }
    }
}

TEST(PreferenceMatrixDeathTest, RejectsNegativeWeight)
{
    PreferenceMatrix w(1, 1, 1);
    EXPECT_DEATH(w.set(0, 0, 0, -0.5), "negative");
}

TEST(PreferenceMatrixDeathTest, RejectsOutOfRange)
{
    PreferenceMatrix w(1, 2, 2);
    EXPECT_DEATH(w.at(0, 2, 0), "out of range");
    EXPECT_DEATH(w.at(1, 0, 0), "out of range");
}

} // namespace
} // namespace csched
