/**
 * @file
 * Tests for the JSON support layer: string escaping, the streaming
 * writer's exact output format, and writer -> parser round trips
 * (the property the grid-report serialization relies on).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/json.hh"

namespace csched {
namespace {

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(escapeJson("convergent"), "convergent");
    EXPECT_EQ(escapeJson("raw4x4"), "raw4x4");
    EXPECT_EQ(escapeJson(""), "");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes)
{
    EXPECT_EQ(escapeJson("a\"b"), "a\\\"b");
    EXPECT_EQ(escapeJson("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeJson("\"\\\""), "\\\"\\\\\\\"");
}

TEST(JsonEscape, EscapesControlCharacters)
{
    EXPECT_EQ(escapeJson("a\nb"), "a\\nb");
    EXPECT_EQ(escapeJson("a\tb"), "a\\tb");
    EXPECT_EQ(escapeJson("a\rb"), "a\\rb");
    EXPECT_EQ(escapeJson(std::string(1, '\0')), "\\u0000");
    EXPECT_EQ(escapeJson("\x01\x1f"), "\\u0001\\u001f");
}

TEST(JsonEscape, LeavesUtf8BytesAlone)
{
    // Multi-byte UTF-8 is valid inside JSON strings unescaped.
    EXPECT_EQ(escapeJson("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriter, WritesIndentedObject)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        w.key("name").value("fir");
        w.key("makespan").value(42);
        w.key("ok").value(true);
        w.endObject();
    }
    EXPECT_EQ(out.str(), "{\n"
                         "  \"name\": \"fir\",\n"
                         "  \"makespan\": 42,\n"
                         "  \"ok\": true\n"
                         "}");
}

TEST(JsonWriter, WritesCompactNumericArrays)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        w.key("assignment").value(std::vector<int>{0, 1, 1, 2});
        w.endObject();
    }
    EXPECT_EQ(out.str(), "{\n"
                         "  \"assignment\": [0, 1, 1, 2]\n"
                         "}");
}

TEST(JsonWriter, FormatsDoublesShortestRoundTrip)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginArray();
        w.value(2.5);
        w.value(1.0 / 3.0);
        w.value(-0.0);
        w.endArray();
    }
    const auto parsed = parseJson(out.str());
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->array.size(), 3u);
    EXPECT_EQ(parsed->array[0].asDouble(), 2.5);
    EXPECT_EQ(parsed->array[1].asDouble(), 1.0 / 3.0);
    EXPECT_EQ(parsed->array[2].asDouble(), -0.0);
}

TEST(JsonWriter, RoundTripsEscapedStrings)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        w.key("text").value("line1\nline2\t\"quoted\" \\slash\\");
        w.endObject();
    }
    const auto parsed = parseJson(out.str());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->at("text").string,
              "line1\nline2\t\"quoted\" \\slash\\");
}

TEST(JsonParser, ParsesScalars)
{
    EXPECT_EQ(parseJson("null")->kind, JsonValue::Kind::Null);
    EXPECT_EQ(parseJson("true")->boolean, true);
    EXPECT_EQ(parseJson("false")->boolean, false);
    EXPECT_EQ(parseJson("42")->asInt(), 42);
    EXPECT_EQ(parseJson("-17")->asInt(), -17);
    EXPECT_EQ(parseJson("2.5e1")->asDouble(), 25.0);
    EXPECT_EQ(parseJson("\"hi\"")->string, "hi");
}

TEST(JsonParser, ParsesUnicodeEscapes)
{
    const auto parsed = parseJson("\"\\u0041\\u00e9\"");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->string, "A\xc3\xa9");
}

TEST(JsonParser, ParsesNestedStructures)
{
    const auto parsed = parseJson(
        "{\"results\": [{\"makespan\": 18, \"assignment\": [0, 1]},"
        " {\"makespan\": 20}], \"threads\": 4}");
    ASSERT_TRUE(parsed.has_value());
    const auto &results = parsed->at("results");
    ASSERT_EQ(results.array.size(), 2u);
    EXPECT_EQ(results.array[0].at("makespan").asInt(), 18);
    EXPECT_EQ(results.array[0].at("assignment").array.size(), 2u);
    EXPECT_EQ(results.array[1].at("makespan").asInt(), 20);
    EXPECT_EQ(parsed->at("threads").asInt(), 4);
    EXPECT_EQ(parsed->find("missing"), nullptr);
}

TEST(JsonParser, RejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(parseJson("", &error).has_value());
    EXPECT_FALSE(parseJson("{", &error).has_value());
    EXPECT_FALSE(parseJson("[1, 2,]", &error).has_value());
    EXPECT_FALSE(parseJson("{\"a\" 1}", &error).has_value());
    EXPECT_FALSE(parseJson("\"unterminated", &error).has_value());
    EXPECT_FALSE(parseJson("{} trailing", &error).has_value());
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace csched
