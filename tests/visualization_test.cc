/**
 * @file
 * Tests for the schedule printer and the DOT exporter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "eval/experiment.hh"
#include "ir/dot_export.hh"
#include "machine/clustered_vliw.hh"
#include "sched/schedule_printer.hh"
#include "workloads/workloads.hh"

namespace csched {
namespace {

TEST(SchedulePrinter, GanttMentionsEveryClusterAndMakespan)
{
    const ClusteredVliwMachine vliw(2);
    const auto graph = findWorkload("vvmul").build(2, 2);
    const auto algorithm =
        makeAlgorithm(*parseAlgorithmSpec("convergent"), vliw);
    const auto schedule = algorithm->schedule(graph);

    std::ostringstream os;
    printGantt(os, graph, vliw, schedule);
    const std::string out = os.str();
    EXPECT_NE(out.find("cluster 0"), std::string::npos);
    EXPECT_NE(out.find("cluster 1"), std::string::npos);
    EXPECT_NE(out.find("ialu.mem"), std::string::npos);
    EXPECT_NE(out.find("xfer"), std::string::npos);
    EXPECT_NE(out.find("makespan: " +
                        std::to_string(schedule.makespan())),
              std::string::npos);
    // Instruction 0 appears somewhere in the grid.
    EXPECT_NE(out.find("i0"), std::string::npos);
}

TEST(SchedulePrinter, GanttHonoursCycleCap)
{
    const ClusteredVliwMachine vliw(1);
    const auto graph = findWorkload("vvmul").build(1, 1);
    const auto algorithm =
        makeAlgorithm(*parseAlgorithmSpec("convergent"), vliw);
    const auto schedule = algorithm->schedule(graph);

    std::ostringstream full;
    printGantt(full, graph, vliw, schedule);
    std::ostringstream capped;
    printGantt(capped, graph, vliw, schedule, 4);
    EXPECT_LT(capped.str().size(), full.str().size());
}

TEST(SchedulePrinter, PlacementsListEveryInstruction)
{
    const ClusteredVliwMachine vliw(2);
    const auto graph = findWorkload("fir").build(2, 2);
    const auto algorithm = makeAlgorithm(*parseAlgorithmSpec("uas"), vliw);
    const auto schedule = algorithm->schedule(graph);

    std::ostringstream os;
    printPlacements(os, graph, schedule);
    const std::string out = os.str();
    int lines = 0;
    for (char ch : out)
        lines += ch == '\n' ? 1 : 0;
    EXPECT_EQ(lines, graph.numInstructions());
}

TEST(DotExport, ProducesWellFormedGraph)
{
    const auto graph = findWorkload("vvmul").build(2, 2);
    std::ostringstream os;
    exportDot(os, graph);
    const std::string out = os.str();
    EXPECT_EQ(out.rfind("digraph", 0), 0u);
    EXPECT_NE(out.find("}"), std::string::npos);
    // One node statement per instruction.
    size_t nodes = 0;
    for (size_t pos = out.find("\n  n");
         pos != std::string::npos && out[pos + 4] != ' ';
         pos = out.find("\n  n", pos + 1)) {
        if (out.find(" [label=", pos) == out.find(" ", pos + 3))
            ++nodes;
    }
    // Cheaper invariant: every instruction id is mentioned.
    for (InstrId id = 0; id < graph.numInstructions(); ++id)
        EXPECT_NE(out.find("n" + std::to_string(id) + " "),
                  std::string::npos);
    (void)nodes;
}

TEST(DotExport, ColoursByAssignmentAndMarksPreplaced)
{
    const auto graph = findWorkload("vvmul").build(2, 2);
    const ClusteredVliwMachine vliw(2);
    const auto algorithm = makeAlgorithm(*parseAlgorithmSpec("uas"), vliw);
    const auto schedule = algorithm->schedule(graph);

    std::ostringstream os;
    exportDot(os, graph, schedule.assignment());
    const std::string out = os.str();
    EXPECT_NE(out.find("shape=triangle"), std::string::npos);
    EXPECT_NE(out.find("fillcolor=\"#"), std::string::npos);
}

TEST(DotExportDeathTest, RejectsWrongAssignmentSize)
{
    const auto graph = findWorkload("vvmul").build(2, 2);
    std::ostringstream os;
    EXPECT_DEATH(exportDot(os, graph, {0, 1}), "mismatch");
}

} // namespace
} // namespace csched
