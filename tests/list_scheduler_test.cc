/**
 * @file
 * Unit tests for the cycle-driven list scheduler: dependences, FU
 * capacity, communication insertion per machine style, memory
 * penalties, and priority behaviour.  Every schedule is re-verified
 * with the independent checker.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "ir/graph_algorithms.hh"
#include "ir/graph_builder.hh"
#include "machine/clustered_vliw.hh"
#include "machine/raw_machine.hh"
#include "machine/single_cluster.hh"
#include "sched/list_scheduler.hh"
#include "sched/priorities.hh"
#include "sched/schedule_checker.hh"

namespace csched {
namespace {

/** Schedule with uniform priorities and assert checker-clean. */
Schedule
runChecked(const DependenceGraph &graph, const MachineModel &machine,
           const std::vector<int> &assignment)
{
    const ListScheduler scheduler(machine);
    const auto schedule =
        scheduler.run(graph, assignment, criticalPathPriority(graph));
    const auto check = checkSchedule(graph, machine, schedule);
    EXPECT_TRUE(check.ok()) << check.message();
    return schedule;
}

TEST(ListScheduler, SerialChainOnOneCluster)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IAdd);
    const InstrId b = builder.op(Opcode::IMul, {a});  // latency 2
    const InstrId c = builder.op(Opcode::IAdd, {b});
    const auto graph = builder.build();

    const ClusteredVliwMachine vliw(1);
    const auto schedule = runChecked(graph, vliw, {0, 0, 0});
    EXPECT_EQ(schedule.cycleOf(a), 0);
    EXPECT_EQ(schedule.cycleOf(b), 1);
    EXPECT_EQ(schedule.cycleOf(c), 3);
    EXPECT_EQ(schedule.makespan(), 4);
    EXPECT_TRUE(schedule.comms().empty());
}

TEST(ListScheduler, FuContentionSerialisesSameClassOps)
{
    GraphBuilder builder;
    for (int k = 0; k < 3; ++k)
        builder.op(Opcode::FMul);  // one FPU per VLIW cluster
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(1);
    const auto schedule = runChecked(graph, vliw, {0, 0, 0});
    // Three independent FMuls on one FPU: issue 0, 1, 2.
    std::vector<int> cycles{schedule.cycleOf(0), schedule.cycleOf(1),
                            schedule.cycleOf(2)};
    std::sort(cycles.begin(), cycles.end());
    EXPECT_EQ(cycles, (std::vector<int>{0, 1, 2}));
}

TEST(ListScheduler, IntOpsDualIssueOnVliwCluster)
{
    GraphBuilder builder;
    for (int k = 0; k < 4; ++k)
        builder.op(Opcode::IAdd);
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(1);
    const auto schedule = runChecked(graph, vliw, {0, 0, 0, 0});
    // Two integer-capable FUs: four adds finish within two cycles.
    EXPECT_EQ(schedule.makespan(), 2);
}

TEST(ListScheduler, VliwCopyInsertedForRemoteConsumer)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IAdd);
    const InstrId b = builder.op(Opcode::IAdd, {a});
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(2);
    const auto schedule = runChecked(graph, vliw, {0, 1});
    ASSERT_EQ(schedule.comms().size(), 1u);
    const auto &copy = schedule.comms()[0];
    EXPECT_EQ(copy.fromCluster, 0);
    EXPECT_EQ(copy.toCluster, 1);
    EXPECT_GE(copy.start, schedule.at(a).finish);
    EXPECT_EQ(copy.arrive, copy.start + 1);
    EXPECT_GE(schedule.cycleOf(b), copy.arrive);
    // a finishes at 1, copy at 1, arrives 2, b issues at 2.
    EXPECT_EQ(schedule.makespan(), 3);
}

TEST(ListScheduler, CopySharedAmongConsumersOnSameCluster)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IAdd);
    builder.op(Opcode::IAdd, {a});
    builder.op(Opcode::ISub, {a});
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(2);
    const auto schedule = runChecked(graph, vliw, {0, 1, 1});
    // One copy serves both consumers on cluster 1.
    EXPECT_EQ(schedule.comms().size(), 1u);
}

TEST(ListScheduler, RemoteMemoryPenaltyExtendsFinish)
{
    GraphBuilder builder;
    const InstrId ld = builder.load(1);  // bank 1
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(2);
    // Not preplaced-constrained here: build() without preplacement,
    // so the load may sit anywhere; place it off its bank.
    const auto schedule = runChecked(graph, vliw, {0});
    EXPECT_EQ(schedule.at(ld).finish,
              0 + 2 + 1);  // latency 2 + remote penalty 1
}

TEST(ListScheduler, RawRouteReservedPerHop)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IAdd);
    const InstrId b = builder.op(Opcode::IAdd, {a});
    const auto graph = builder.build();
    const RawMachine raw(1, 4);
    const auto schedule = runChecked(graph, raw, {0, 2});
    ASSERT_EQ(schedule.comms().size(), 1u);
    const auto &route = schedule.comms()[0];
    EXPECT_EQ(route.linkSlots.size(), 2u);  // two hops
    EXPECT_EQ(route.arrive, route.start + 4);  // 3 + (2-1)
    EXPECT_GE(schedule.cycleOf(b), route.arrive);
}

TEST(ListScheduler, ReceiveOpOccupiesConsumerFu)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IAdd);
    const InstrId b = builder.op(Opcode::IAdd, {a});
    const auto graph = builder.build();
    const UniformMachine uniform(2, 1, 1);
    const auto schedule = runChecked(graph, uniform, {0, 1});
    ASSERT_EQ(schedule.comms().size(), 1u);
    const auto &recv = schedule.comms()[0];
    EXPECT_EQ(recv.toCluster, 1);
    EXPECT_GE(recv.fu, 0);
    EXPECT_GE(schedule.cycleOf(b), recv.arrive);
}

TEST(ListScheduler, PriorityOrdersContendingInstructions)
{
    GraphBuilder builder;
    const InstrId hot = builder.op(Opcode::FMul);
    const InstrId cold = builder.op(Opcode::FMul);
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(1);
    const ListScheduler scheduler(vliw);
    {
        const auto schedule =
            scheduler.run(graph, {0, 0}, {10.0, 1.0});
        EXPECT_LT(schedule.cycleOf(hot), schedule.cycleOf(cold));
    }
    {
        const auto schedule =
            scheduler.run(graph, {0, 0}, {1.0, 10.0});
        EXPECT_GT(schedule.cycleOf(hot), schedule.cycleOf(cold));
    }
}

TEST(ListScheduler, AntiDependenceOrdersIssueOnly)
{
    GraphBuilder builder;
    const InstrId reader = builder.op(Opcode::IAdd);
    const InstrId writer = builder.op(Opcode::IAdd);
    builder.edge(reader, writer, DepKind::Anti);
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(1);
    const auto schedule = runChecked(graph, vliw, {0, 0});
    // No value flows: writer just needs a later issue slot, and no
    // communication is generated even across clusters.
    EXPECT_GT(schedule.cycleOf(writer), schedule.cycleOf(reader));
    EXPECT_TRUE(schedule.comms().empty());
}

TEST(ListScheduler, MakespanNeverBelowCriticalPath)
{
    GraphBuilder builder;
    InstrId prev = builder.op(Opcode::FMul);
    for (int k = 0; k < 5; ++k)
        prev = builder.op(Opcode::FAdd, {prev});
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(4);
    const auto schedule =
        runChecked(graph, vliw, std::vector<int>(6, 0));
    EXPECT_GE(schedule.makespan(), graph.criticalPathLength());
}

TEST(ListSchedulerDeathTest, PreplacedMustBeAssignedHome)
{
    GraphBuilder builder;
    builder.load(1);
    preplaceMemoryByBank(builder.graph(), 2);
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(2);
    const ListScheduler scheduler(vliw);
    EXPECT_DEATH(scheduler.run(graph, {0}, {1.0}), "preplaced");
}

TEST(ListSchedulerDeathTest, RejectsIncapableAssignment)
{
    GraphBuilder builder;
    builder.op(Opcode::FMul);
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(2);
    const ListScheduler scheduler(vliw);
    EXPECT_DEATH(scheduler.run(graph, {5}, {1.0}), "invalid cluster");
}

} // namespace
} // namespace csched
