/**
 * @file
 * Reproduction of the paper's Figure 1: the locality-vs-parallelism
 * tradeoff on a three-cluster machine with one FU per cluster and
 * one-cycle communication via receive instructions.
 *
 * Conservative partitioning (everything local) takes 8 cycles,
 * maximally aggressive partitioning takes 8 cycles, and the balanced
 * tradeoff takes 7.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "ir/graph_builder.hh"
#include "machine/single_cluster.hh"
#include "sched/list_scheduler.hh"
#include "sched/priorities.hh"
#include "sched/schedule_checker.hh"

namespace csched {
namespace {

/**
 * The Figure-1 style kernel: three 2-cycle multiplies feeding a tree
 * of 1-cycle adds (ids: m1 a2 m3 a4 m5 a6 a7 a8).
 */
DependenceGraph
figure1Graph()
{
    LatencyModel latencies;
    latencies.setLatency(Opcode::IMul, 2);
    GraphBuilder builder(latencies);
    const InstrId m1 = builder.op(Opcode::IMul, {}, "1 MUL");
    const InstrId a2 = builder.op(Opcode::IAdd, {m1}, "2 ADD");
    const InstrId m3 = builder.op(Opcode::IMul, {}, "3 MUL");
    const InstrId a4 = builder.op(Opcode::IAdd, {m3}, "4 ADD");
    const InstrId m5 = builder.op(Opcode::IMul, {}, "5 MUL");
    const InstrId a6 = builder.op(Opcode::IAdd, {m5}, "6 ADD");
    const InstrId a7 = builder.op(Opcode::IAdd, {a2, a4}, "7 ADD");
    builder.op(Opcode::IAdd, {a7, a6}, "8 ADD");
    return builder.build();
}

int
makespanOf(const DependenceGraph &graph, const MachineModel &machine,
           const std::vector<int> &assignment)
{
    const ListScheduler scheduler(machine);
    const auto schedule =
        scheduler.run(graph, assignment, criticalPathPriority(graph));
    const auto check = checkSchedule(graph, machine, schedule);
    EXPECT_TRUE(check.ok()) << check.message();
    return schedule.makespan();
}

TEST(Figure1, ConservativeTakesEight)
{
    const UniformMachine machine(3, 1, 1);
    const auto graph = figure1Graph();
    EXPECT_EQ(makespanOf(graph, machine,
                         std::vector<int>(8, 0)),
              8);
}

TEST(Figure1, AggressiveTakesEight)
{
    const UniformMachine machine(3, 1, 1);
    const auto graph = figure1Graph();
    // Round-robin spread: maximal parallelism, maximal communication.
    EXPECT_EQ(makespanOf(graph, machine,
                         {0, 1, 2, 0, 1, 2, 0, 1}),
              8);
}

TEST(Figure1, BalancedTradeoffTakesSeven)
{
    const UniformMachine machine(3, 1, 1);
    const auto graph = figure1Graph();
    // Each multiply/add pair stays local; the combining adds join the
    // first cluster: a careful tradeoff between locality and
    // parallelism (the paper's Figure 1c).
    EXPECT_EQ(makespanOf(graph, machine,
                         {0, 0, 1, 1, 2, 2, 0, 0}),
              7);
}

TEST(Figure1, SevenIsOptimalByExhaustion)
{
    const UniformMachine machine(3, 1, 1);
    const auto graph = figure1Graph();
    int best = 1 << 30;
    std::vector<int> assignment(8, 0);
    // All 3^8 assignments.
    for (int code = 0; code < 6561; ++code) {
        int rest = code;
        for (int k = 0; k < 8; ++k) {
            assignment[k] = rest % 3;
            rest /= 3;
        }
        const ListScheduler scheduler(machine);
        const auto schedule = scheduler.run(
            graph, assignment, criticalPathPriority(graph));
        best = std::min(best, schedule.makespan());
    }
    EXPECT_EQ(best, 7);
}

} // namespace
} // namespace csched
