/**
 * @file
 * Seeded property test for degraded-hardware scheduling: every
 * algorithm, on a few hundred random fault maps (up to 30% dead
 * tiles plus link/slow faults), must either produce a checker-valid
 * schedule or return a structured error -- never crash, hang, or
 * trip an invariant.  The suite runs under ASan/UBSan in tier2, so a
 * latent out-of-bounds access on a dead cluster or link table would
 * surface here.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eval/experiment.hh"
#include "machine/machine_spec.hh"
#include "sched/schedule_checker.hh"
#include "workloads/workloads.hh"

namespace csched {
namespace {

/**
 * Deterministic fault-map spec for iteration @p i: densities cycle
 * through 0..30% dead tiles, 0..19% dead links, 0..24% slowed tiles,
 * each under its own seed.  Some of these maps are invalid by design
 * (disconnected meshes), which is part of the property: they must be
 * rejected as InvalidSpec, not scheduled around silently.
 */
std::string
machineSpecAt(int i)
{
    const int tiles = i % 31;
    const int links = (i * 7) % 20;
    const int slow = (i * 3) % 25;
    std::string spec = "raw4x4";
    std::string faults;
    auto add = [&faults](const std::string &field) {
        if (!faults.empty())
            faults += ",";
        faults += field;
    };
    if (tiles > 0)
        add("tiles:" + std::to_string(tiles) + "%");
    if (links > 0)
        add("links:" + std::to_string(links) + "%");
    if (slow > 0)
        add("slow:" + std::to_string(slow) + "%");
    if (faults.empty())
        return spec;
    return spec + "/faults=seed:" + std::to_string(i) + "," + faults;
}

TEST(DegradedMachineProperty, EveryAlgorithmIsValidOrStructured)
{
    const std::vector<std::string> algorithms{"convergent", "uas", "pcc",
                                              "rawcc"};
    const std::vector<std::string> workloads{"fir", "vvmul", "jacobi"};
    int scheduled = 0;
    int rejected_specs = 0;
    for (int i = 0; i < 200; ++i) {
        const std::string spec_text = machineSpecAt(i);
        auto machine = tryParseMachineSpec(spec_text);
        if (!machine.ok()) {
            // A fault map may disconnect the mesh; that must be a
            // structured InvalidSpec, never a crash.
            EXPECT_EQ(machine.status().code(), ErrorCode::InvalidSpec)
                << spec_text << ": " << machine.status().toString();
            ++rejected_specs;
            continue;
        }
        const WorkloadSpec &workload =
            findWorkload(workloads[i % workloads.size()]);
        DependenceGraph graph = workload.build(
            (*machine)->numClusters(), (*machine)->numClusters());
        remapPreplacedForMachine(graph, **machine);
        for (const auto &name : algorithms) {
            const auto algo_spec = parseAlgorithmSpec(name);
            ASSERT_TRUE(algo_spec.has_value());
            auto algorithm = tryMakeAlgorithm(*algo_spec, **machine);
            ASSERT_TRUE(algorithm.ok()) << algorithm.status().toString();
            const auto run =
                tryRunAndCheck(**algorithm, graph, **machine);
            if (!run.ok()) {
                EXPECT_TRUE(
                    run.status().code() == ErrorCode::InvalidSpec ||
                    run.status().code() == ErrorCode::CheckFailed)
                    << spec_text << "/" << name << ": "
                    << run.status().toString();
                continue;
            }
            ++scheduled;
            EXPECT_GT(run->makespan, 0)
                << spec_text << "/" << name;
            // The checker already validated the schedule; pin the
            // fault contract explicitly: no instruction on a dead
            // tile.
            const Schedule &schedule = run->result.schedule;
            for (InstrId id = 0; id < graph.numInstructions(); ++id)
                EXPECT_TRUE(
                    (*machine)->clusterAlive(schedule.clusterOf(id)))
                    << spec_text << "/" << name << " placed instr "
                    << id << " on a dead tile";
        }
    }
    // The sweep must actually exercise the degraded paths: the bulk
    // of the maps parse and schedule on all four algorithms.
    EXPECT_GT(scheduled, 400);
    EXPECT_LT(rejected_specs, 100);
}

TEST(DegradedMachineProperty, PreplacementMustBeRemapped)
{
    // A graph whose preplaced homes were not re-homed onto alive
    // tiles is rejected up front with InvalidSpec (not a checker
    // failure deep inside an algorithm).
    const auto machine = tryParseMachineSpec("raw4x4/faults=tiles:5");
    ASSERT_TRUE(machine.ok()) << machine.status().toString();
    const WorkloadSpec &workload = findWorkload("jacobi");
    const DependenceGraph graph = workload.build(
        (*machine)->numClusters(), (*machine)->numClusters());
    const auto algo_spec = parseAlgorithmSpec("convergent");
    ASSERT_TRUE(algo_spec.has_value());
    const auto algorithm = tryMakeAlgorithm(*algo_spec, **machine);
    ASSERT_TRUE(algorithm.ok());
    const auto run = tryRunAndCheck(**algorithm, graph, **machine);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), ErrorCode::InvalidSpec);
}

} // namespace
} // namespace csched
