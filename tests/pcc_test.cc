/**
 * @file
 * Tests for the PCC baseline: component construction invariants, the
 * schedule-length estimator, and end-to-end legality.
 */

#include <gtest/gtest.h>

#include <map>

#include "baseline/pcc.hh"
#include "ir/graph_algorithms.hh"
#include "ir/graph_builder.hh"
#include "machine/clustered_vliw.hh"
#include "sched/schedule_checker.hh"
#include "workloads/workloads.hh"

namespace csched {
namespace {

TEST(Pcc, ComponentsCoverEveryInstructionWithinCap)
{
    const ClusteredVliwMachine vliw(4);
    PccScheduler::Options options;
    options.componentCap = 5;
    const PccScheduler pcc(vliw, options);
    const auto graph = findWorkload("mxm").build(4, 4);
    const auto component = pcc.buildComponents(graph);
    ASSERT_EQ(component.size(),
              static_cast<size_t>(graph.numInstructions()));
    std::map<int, int> sizes;
    for (int comp : component) {
        EXPECT_GE(comp, 0);
        sizes[comp] += 1;
    }
    for (const auto &[comp, size] : sizes)
        EXPECT_LE(size, 5) << "component " << comp;
}

TEST(Pcc, ComponentsNeverMixPreplacementHomes)
{
    const ClusteredVliwMachine vliw(4);
    const PccScheduler pcc(vliw);
    const auto graph = findWorkload("fir").build(4, 4);
    const auto component = pcc.buildComponents(graph);
    std::map<int, int> home_of;
    for (InstrId id = 0; id < graph.numInstructions(); ++id) {
        const int home = graph.instr(id).homeCluster;
        if (home == kNoCluster)
            continue;
        auto [it, inserted] = home_of.emplace(component[id], home);
        if (!inserted) {
            EXPECT_EQ(it->second, home)
                << "component " << component[id];
        }
    }
}

TEST(Pcc, AutoCapScalesWithGraphSize)
{
    const ClusteredVliwMachine vliw(4);
    const PccScheduler pcc(vliw);
    EXPECT_EQ(pcc.effectiveCap(16), 4);   // floor
    EXPECT_EQ(pcc.effectiveCap(1600), 100);
}

TEST(Pcc, ChainLandsInOneComponent)
{
    GraphBuilder builder;
    InstrId prev = builder.op(Opcode::IAdd);
    for (int k = 0; k < 3; ++k)
        prev = builder.op(Opcode::IAdd, {prev});
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(4);
    const PccScheduler pcc(vliw);
    const auto component = pcc.buildComponents(graph);
    for (int comp : component)
        EXPECT_EQ(comp, component[0]);
}

TEST(Pcc, EstimatorLowerBoundsChains)
{
    GraphBuilder builder;
    InstrId prev = builder.op(Opcode::FMul);  // latency 4
    prev = builder.op(Opcode::FAdd, {prev});
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(4);
    const PccScheduler pcc(vliw);
    // Same-cluster chain: 4 + 4.
    EXPECT_EQ(pcc.estimate(graph, {0, 0}), 8);
    // Split chain pays the one-cycle copy.
    EXPECT_EQ(pcc.estimate(graph, {0, 1}), 9);
}

TEST(Pcc, EstimatorModelsIssueWidth)
{
    GraphBuilder builder;
    for (int k = 0; k < 8; ++k)
        builder.op(Opcode::IAdd);
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(1);
    const PccScheduler pcc(vliw);
    // Width 4 per cluster: eight one-cycle adds need two issue
    // rounds, finishing at cycle 2.
    EXPECT_EQ(pcc.estimate(graph, std::vector<int>(8, 0)), 2);
}

TEST(Pcc, EstimatorChargesRemoteMemory)
{
    GraphBuilder builder;
    builder.load(1);
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(4);
    const PccScheduler pcc(vliw);
    EXPECT_EQ(pcc.estimate(graph, {1}), 2);  // local bank
    EXPECT_EQ(pcc.estimate(graph, {0}), 3);  // +1 remote
}

TEST(Pcc, EndToEndLegalAndPreplacementSafe)
{
    const ClusteredVliwMachine vliw(4);
    const PccScheduler pcc(vliw);
    for (const char *name : {"vvmul", "tomcatv", "cholesky"}) {
        const auto graph = findWorkload(name).build(4, 4);
        const auto schedule = pcc.schedule(graph);
        const auto check = checkSchedule(graph, vliw, schedule);
        EXPECT_TRUE(check.ok()) << name << ": " << check.message();
        for (InstrId id = 0; id < graph.numInstructions(); ++id) {
            const auto &instr = graph.instr(id);
            if (instr.preplaced()) {
                EXPECT_EQ(schedule.clusterOf(id), instr.homeCluster);
            }
        }
    }
}

TEST(Pcc, DescentDoesNotRegressEstimate)
{
    // The descent only accepts improving moves, so the final estimate
    // can never exceed the initial assignment's estimate.  We verify
    // indirectly: PCC beats or matches the naive everything-on-the-
    // home-or-cluster-0 assignment on a parallel kernel.
    const ClusteredVliwMachine vliw(4);
    const PccScheduler pcc(vliw);
    const auto graph = findWorkload("vvmul").build(4, 4);
    const auto schedule = pcc.schedule(graph);
    std::vector<int> naive(graph.numInstructions(), 0);
    for (InstrId id = 0; id < graph.numInstructions(); ++id)
        if (graph.instr(id).preplaced())
            naive[id] = graph.instr(id).homeCluster;
    EXPECT_LE(pcc.estimate(graph, schedule.assignment()),
              pcc.estimate(graph, naive));
}

} // namespace
} // namespace csched
