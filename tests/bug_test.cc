/**
 * @file
 * Tests for the BUG baseline and brute-force optimality properties of
 * the whole scheduling stack on tiny graphs.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/bug.hh"
#include "eval/experiment.hh"
#include "ir/graph_algorithms.hh"
#include "ir/graph_builder.hh"
#include "machine/clustered_vliw.hh"
#include "machine/raw_machine.hh"
#include "sched/list_scheduler.hh"
#include "sched/priorities.hh"
#include "sched/schedule_checker.hh"
#include "support/rng.hh"
#include "workloads/random_dag.hh"
#include "workloads/workloads.hh"

namespace csched {
namespace {

TEST(Bug, LegalOnSuites)
{
    const ClusteredVliwMachine vliw(4);
    const BugScheduler bug(vliw);
    for (const char *name : {"vvmul", "fir", "cholesky"}) {
        const auto graph = findWorkload(name).build(4, 4);
        const auto schedule = bug.schedule(graph);
        const auto check = checkSchedule(graph, vliw, schedule);
        EXPECT_TRUE(check.ok()) << name << ": " << check.message();
    }
}

TEST(Bug, RespectsPreplacement)
{
    const auto raw = RawMachine::withTiles(4);
    const BugScheduler bug(raw);
    const auto graph = findWorkload("jacobi").build(4, 4);
    const auto assignment = bug.assign(graph);
    for (InstrId id = 0; id < graph.numInstructions(); ++id) {
        const auto &instr = graph.instr(id);
        if (instr.preplaced()) {
            EXPECT_EQ(assignment[id], instr.homeCluster);
        }
    }
}

TEST(Bug, SpreadsIndependentWork)
{
    GraphBuilder builder;
    for (int k = 0; k < 8; ++k)
        builder.op(Opcode::FMul);
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(4);
    const BugScheduler bug(vliw);
    const auto assignment = bug.assign(graph);
    int used[4] = {};
    for (int c : assignment)
        used[c] += 1;
    for (int c = 0; c < 4; ++c)
        EXPECT_GT(used[c], 0);
}

TEST(Bug, PullsFreeOpsTowardsPreplacedConsumers)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IAdd);
    const InstrId b = builder.op(Opcode::IAdd, {a});
    builder.store(2, b);
    preplaceMemoryByBank(builder.graph(), 4);
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(4);
    const BugScheduler bug(vliw);
    const auto assignment = bug.assign(graph);
    // The greedy pass sees equal completion everywhere; the bottom-up
    // preplacement affinity breaks the tie towards cluster 2.
    EXPECT_EQ(assignment[a], 2);
    EXPECT_EQ(assignment[b], 2);
}

/**
 * Brute-force property: on tiny graphs, every production scheduler's
 * makespan is bounded below by the best makespan over ALL cluster
 * assignments (scheduled with the same list scheduler).  This checks
 * that no scheduler ever reports an impossibly good result and that
 * the heuristics stay within a small factor of optimal.
 */
TEST(BruteForce, SchedulersBoundedByExhaustiveOptimum)
{
    Rng rng(4242);
    const ClusteredVliwMachine vliw(2);
    for (int round = 0; round < 5; ++round) {
        RandomDagOptions options;
        options.numInstructions = 8;
        options.width = 3;
        options.banks = 2;
        options.preplaceClusters = 2;
        options.memFraction = 0.3;
        options.seed = 1000 + round;
        const auto graph = makeRandomDag(options);
        const int n = graph.numInstructions();

        // Exhaustive optimum over 2^8 assignments (respecting
        // preplacement).
        int best = 1 << 30;
        const ListScheduler scheduler(vliw);
        for (int code = 0; code < (1 << n); ++code) {
            std::vector<int> assignment(n);
            bool legal = true;
            for (int k = 0; k < n; ++k) {
                assignment[k] = (code >> k) & 1;
                const auto &instr = graph.instr(k);
                if (instr.preplaced() &&
                    assignment[k] != instr.homeCluster) {
                    legal = false;
                    break;
                }
            }
            if (!legal)
                continue;
            best = std::min(
                best, scheduler
                          .run(graph, assignment,
                               criticalPathPriority(graph))
                          .makespan());
        }

        for (const char *name : {"convergent", "uas", "pcc", "rawcc"}) {
            const auto algorithm =
                makeAlgorithm(*parseAlgorithmSpec(name), vliw);
            const int makespan = algorithm->schedule(graph).makespan();
            EXPECT_GE(makespan, graph.criticalPathLength());
            // Never better than the exhaustive optimum...
            EXPECT_GE(makespan + 1e-9, best);
            // ...and within a small factor of it.
            EXPECT_LE(makespan, 2 * best + 4)
                << "seed " << options.seed << " algorithm " << name;
        }
    }
}

} // namespace
} // namespace csched
