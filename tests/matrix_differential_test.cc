/**
 * @file
 * Differential property test: the cluster-blocked engine
 * (PreferenceMatrix) must agree bit-for-bit with the pre-rewrite
 * time-major engine (DenseReferenceMatrix) on every operation
 * sequence.  "Bit-for-bit" is literal: weights are compared by their
 * IEEE-754 payloads, so even a +0.0/-0.0 disagreement or a reordered
 * summation (which changes rounding) fails the test.
 *
 * Seeded random scripts draw from the full mutation surface --
 * including the window restriction and noise ops whose blocked
 * implementations skip work the dense engine performs explicitly, and
 * repeated normalize() calls that exercise the shared clean-skip
 * predicate -- and cross-check all derived observables (marginals,
 * preferred slots, runner-up, confidence, expected time) after every
 * step.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "convergent/dense_reference_matrix.hh"
#include "convergent/preference_matrix.hh"
#include "support/rng.hh"

namespace csched {
namespace {

/** Exact-bits equality for finite doubles, with a readable failure. */
::testing::AssertionResult
sameBits(double blocked, double dense)
{
    if (std::bit_cast<uint64_t>(blocked) == std::bit_cast<uint64_t>(dense))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "blocked=" << blocked << " (0x" << std::hex
           << std::bit_cast<uint64_t>(blocked) << ") dense=" << std::dec
           << dense << " (0x" << std::hex << std::bit_cast<uint64_t>(dense)
           << ")";
}

/** Compare every observable of instruction @p i in both engines. */
void
expectRowIdentical(const PreferenceMatrix &blocked,
                   const DenseReferenceMatrix &dense, InstrId i)
{
    for (int t = 0; t < blocked.numTimes(); ++t)
        for (int c = 0; c < blocked.numClusters(); ++c)
            ASSERT_TRUE(sameBits(blocked.at(i, t, c), dense.at(i, t, c)))
                << "weight i=" << i << " t=" << t << " c=" << c;
    for (int c = 0; c < blocked.numClusters(); ++c)
        ASSERT_TRUE(
            sameBits(blocked.spaceMarginal(i, c), dense.spaceMarginal(i, c)))
            << "space marginal i=" << i << " c=" << c;
    for (int t = 0; t < blocked.numTimes(); ++t)
        ASSERT_TRUE(
            sameBits(blocked.timeMarginal(i, t), dense.timeMarginal(i, t)))
            << "time marginal i=" << i << " t=" << t;
    ASSERT_EQ(blocked.preferredCluster(i), dense.preferredCluster(i));
    ASSERT_EQ(blocked.preferredTime(i), dense.preferredTime(i));
    ASSERT_EQ(blocked.runnerUpCluster(i), dense.runnerUpCluster(i));
    ASSERT_EQ(blocked.expectedTime(i), dense.expectedTime(i));
    ASSERT_TRUE(sameBits(blocked.confidence(i), dense.confidence(i)))
        << "confidence i=" << i;
}

void
expectIdentical(const PreferenceMatrix &blocked,
                const DenseReferenceMatrix &dense)
{
    for (InstrId i = 0; i < blocked.numInstructions(); ++i)
        expectRowIdentical(blocked, dense, i);
}

TEST(MatrixDifferential, FreshMatricesAgree)
{
    const PreferenceMatrix blocked(4, 7, 3);
    const DenseReferenceMatrix dense(4, 7, 3);
    expectIdentical(blocked, dense);
}

TEST(MatrixDifferential, CleanSkipPredicateIsShared)
{
    PreferenceMatrix blocked(1, 5, 2);
    DenseReferenceMatrix dense(1, 5, 2);
    blocked.row(0).scaleCluster(1, 3.0);
    dense.scaleCluster(0, 1, 3.0);
    // Normalizing twice with no mutation in between: both engines must
    // take the clean-skip on the second call (a second rescale would
    // multiply by a 1 +/- 1ulp factor and change the low bits).
    for (int repeat = 0; repeat < 3; ++repeat) {
        blocked.row(0).normalize();
        dense.normalize(0);
        expectIdentical(blocked, dense);
    }
}

TEST(MatrixDifferential, WindowRestrictionIsBitTransparent)
{
    PreferenceMatrix blocked(2, 9, 3);
    DenseReferenceMatrix dense(2, 9, 3);
    blocked.row(0).restrictTimeWindow(2, 6);
    dense.restrictTimeWindow(0, 2, 6);
    blocked.row(0).normalize();
    dense.normalize(0);
    expectIdentical(blocked, dense);
    // Narrow further, then widen again via blend from the wide row.
    blocked.row(0).restrictTimeWindow(3, 5);
    dense.restrictTimeWindow(0, 3, 5);
    blocked.row(0).blendFrom(
        static_cast<const PreferenceMatrix &>(blocked).row(1), 0.5);
    dense.blend(0, 1, 0.5);
    blocked.row(0).normalize();
    dense.normalize(0);
    expectIdentical(blocked, dense);
}

TEST(MatrixDifferential, NoiseDrawsStayInLockstep)
{
    PreferenceMatrix blocked(2, 6, 2);
    DenseReferenceMatrix dense(2, 6, 2);
    // Zero out slots so the skip-without-drawing rule matters: if one
    // engine consumed an rng draw for a zero slot the sequences would
    // diverge on every later slot.
    blocked.row(0).restrictTimeWindow(1, 4);
    dense.restrictTimeWindow(0, 1, 4);
    blocked.row(0).zeroCluster(1);
    for (int t = 0; t < 6; ++t)
        dense.set(0, t, 1, 0.0);
    Rng rng_blocked(99);
    Rng rng_dense(99);
    for (InstrId i = 0; i < 2; ++i) {
        blocked.row(i).addPositiveNoise(rng_blocked, 0.7);
        dense.addPositiveNoise(i, rng_dense, 0.7);
        blocked.row(i).normalize();
        dense.normalize(i);
    }
    expectIdentical(blocked, dense);
}

/**
 * The main event: seeded random scripts over the full op surface,
 * cross-checked after every step.
 */
TEST(MatrixDifferential, RandomScriptsAreBitIdentical)
{
    Rng script(4242);
    for (int round = 0; round < 12; ++round) {
        const int n = 1 + script.range(5);
        const int times = 1 + script.range(10);
        const int clusters = 1 + script.range(4);
        PreferenceMatrix blocked(n, times, clusters);
        DenseReferenceMatrix dense(n, times, clusters);
        // Noise draws must come from engine-private streams with the
        // same seed so a skipped draw in one engine is a bug, not a
        // synchronisation artefact.
        const uint64_t noise_seed = 1000 + round;
        Rng noise_blocked(noise_seed);
        Rng noise_dense(noise_seed);

        for (int step = 0; step < 60; ++step) {
            const InstrId i = script.range(n);
            auto row = blocked.row(i);
            switch (script.range(10)) {
              case 0: {
                const int t = script.range(times);
                const int c = script.range(clusters);
                const double v = script.uniform();
                row.set(t, c, v);
                dense.set(i, t, c, v);
                break;
              }
              case 1: {
                const int t = script.range(times);
                const int c = script.range(clusters);
                const double f = script.uniform() * 3.0;
                row.scaleSlot(t, c, f);
                dense.scale(i, t, c, f);
                break;
              }
              case 2: {
                const int c = script.range(clusters);
                const double f = script.uniform() * 3.0;
                row.scaleCluster(c, f);
                dense.scaleCluster(i, c, f);
                break;
              }
              case 3: {
                const int t = script.range(times);
                const double f = script.uniform() * 3.0;
                row.scaleTime(t, f);
                dense.scaleTime(i, t, f);
                break;
              }
              case 4: {
                std::vector<double> factors(clusters);
                for (int c = 0; c < clusters; ++c)
                    factors[c] = script.uniform() * 2.0;
                row.scaleClusters(factors.data());
                for (int c = 0; c < clusters; ++c)
                    dense.scaleCluster(i, c, factors[c]);
                break;
              }
              case 5: {
                const InstrId src = script.range(n);
                const double keep = script.uniform();
                row.blendFrom(
                    static_cast<const PreferenceMatrix &>(blocked).row(src),
                    keep);
                dense.blend(i, src, keep);
                break;
              }
              case 6: {
                const int lo = script.range(times + 1);
                const int hi = lo + script.range(times + 1 - lo);
                row.restrictTimeWindow(lo, hi);
                dense.restrictTimeWindow(i, lo, hi);
                break;
              }
              case 7: {
                const int c = script.range(clusters);
                row.zeroCluster(c);
                for (int t = 0; t < times; ++t)
                    dense.set(i, t, c, 0.0);
                break;
              }
              case 8: {
                const double amplitude = script.uniform();
                row.addPositiveNoise(noise_blocked, amplitude);
                dense.addPositiveNoise(i, noise_dense, amplitude);
                break;
              }
              case 9:
                // Repeat normalize on an already-clean row every so
                // often: the clean-skip must fire in both engines.
                row.normalize();
                dense.normalize(i);
                break;
            }
            row.normalize();
            dense.normalize(i);
            ASSERT_NO_FATAL_FAILURE(expectRowIdentical(blocked, dense, i))
                << "round " << round << " step " << step;
        }
        blocked.normalizeAll();
        dense.normalizeAll();
        ASSERT_NO_FATAL_FAILURE(expectIdentical(blocked, dense))
            << "round " << round << " final state";
    }
}

} // namespace
} // namespace csched
