/**
 * @file
 * Negative tests for the schedule checker: corrupt schedules of every
 * violation class must be detected.
 */

#include <gtest/gtest.h>

#include "ir/graph_algorithms.hh"
#include "ir/graph_builder.hh"
#include "machine/clustered_vliw.hh"
#include "machine/raw_machine.hh"
#include "sched/schedule_checker.hh"

namespace csched {
namespace {

/** a -> b chain of integer adds. */
DependenceGraph
makeChain()
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IAdd);
    builder.op(Opcode::IAdd, {a});
    return builder.build();
}

TEST(Checker, AcceptsLegalLocalSchedule)
{
    const auto graph = makeChain();
    const ClusteredVliwMachine vliw(2);
    Schedule schedule(2, 2);
    schedule.place(0, {0, 0, 0, 1});
    schedule.place(1, {0, 1, 0, 2});
    EXPECT_TRUE(checkSchedule(graph, vliw, schedule).ok());
}

TEST(Checker, DetectsMissingPlacement)
{
    const auto graph = makeChain();
    const ClusteredVliwMachine vliw(2);
    Schedule schedule(2, 2);
    schedule.place(0, {0, 0, 0, 1});
    const auto result = checkSchedule(graph, vliw, schedule);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.message().find("never placed"), std::string::npos);
}

TEST(Checker, DetectsDependenceViolation)
{
    const auto graph = makeChain();
    const ClusteredVliwMachine vliw(2);
    Schedule schedule(2, 2);
    schedule.place(0, {0, 5, 0, 6});
    schedule.place(1, {0, 2, 0, 3});  // consumer before producer
    const auto result = checkSchedule(graph, vliw, schedule);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.message().find("data edge"), std::string::npos);
}

TEST(Checker, DetectsFuConflict)
{
    GraphBuilder builder;
    builder.op(Opcode::IAdd);
    builder.op(Opcode::IAdd);
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(1);
    Schedule schedule(2, 1);
    schedule.place(0, {0, 0, 0, 1});
    schedule.place(1, {0, 0, 0, 1});  // same FU, same cycle
    const auto result = checkSchedule(graph, vliw, schedule);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.message().find("FU conflict"), std::string::npos);
}

TEST(Checker, DetectsIncapableFu)
{
    GraphBuilder builder;
    builder.op(Opcode::FMul);
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(1);
    Schedule schedule(1, 1);
    schedule.place(0, {0, 0, 0, 4});  // FU 0 is the IntAlu
    const auto result = checkSchedule(graph, vliw, schedule);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.message().find("incapable"), std::string::npos);
}

TEST(Checker, DetectsPreplacementViolation)
{
    GraphBuilder builder;
    builder.load(1);
    preplaceMemoryByBank(builder.graph(), 2);
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(2);
    Schedule schedule(1, 2);
    schedule.place(0, {0, 0, 1, 3});  // home is cluster 1; penalty +1
    const auto result = checkSchedule(graph, vliw, schedule);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.message().find("preplaced"), std::string::npos);
}

TEST(Checker, DetectsWrongFinish)
{
    GraphBuilder builder;
    builder.op(Opcode::FMul);  // latency 4
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(1);
    Schedule schedule(1, 1);
    schedule.place(0, {0, 0, 2, 3});  // finish should be 4
    const auto result = checkSchedule(graph, vliw, schedule);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.message().find("finish"), std::string::npos);
}

TEST(Checker, DetectsMissingCommunication)
{
    const auto graph = makeChain();
    const ClusteredVliwMachine vliw(2);
    Schedule schedule(2, 2);
    schedule.place(0, {0, 0, 0, 1});
    schedule.place(1, {1, 5, 0, 6});  // no copy delivers the value
    const auto result = checkSchedule(graph, vliw, schedule);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.message().find("no communication"),
              std::string::npos);
}

TEST(Checker, DetectsLateCommunication)
{
    const auto graph = makeChain();
    const ClusteredVliwMachine vliw(2);
    Schedule schedule(2, 2);
    schedule.place(0, {0, 0, 0, 1});
    schedule.place(1, {1, 2, 0, 3});
    CommEvent copy;
    copy.producer = 0;
    copy.fromCluster = 0;
    copy.toCluster = 1;
    copy.start = 4;  // after the consumer issued
    copy.arrive = 5;
    copy.fu = 3;
    schedule.addComm(copy);
    const auto result = checkSchedule(graph, vliw, schedule);
    EXPECT_FALSE(result.ok());
}

TEST(Checker, DetectsCommBeforeProducerFinish)
{
    const auto graph = makeChain();
    const ClusteredVliwMachine vliw(2);
    Schedule schedule(2, 2);
    schedule.place(0, {0, 3, 0, 4});
    schedule.place(1, {1, 6, 0, 7});
    CommEvent copy;
    copy.producer = 0;
    copy.fromCluster = 0;
    copy.toCluster = 1;
    copy.start = 2;  // producer still executing
    copy.arrive = 3;
    copy.fu = 3;
    schedule.addComm(copy);
    const auto result = checkSchedule(graph, vliw, schedule);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.message().find("before producer finish"),
              std::string::npos);
}

TEST(Checker, DetectsLinkConflictOnRaw)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IAdd);
    const InstrId b = builder.op(Opcode::IAdd);
    builder.op(Opcode::IAdd, {a});
    builder.op(Opcode::IAdd, {b});
    const auto graph = builder.build();
    const RawMachine raw(1, 2);
    Schedule schedule(4, 2);
    schedule.place(0, {0, 0, 0, 1});
    schedule.place(1, {0, 1, 0, 2});
    schedule.place(2, {1, 10, 0, 11});
    schedule.place(3, {1, 11, 0, 12});
    const auto route = raw.route(0, 1);
    for (InstrId producer : {0, 1}) {
        CommEvent event;
        event.producer = producer;
        event.fromCluster = 0;
        event.toCluster = 1;
        event.start = 2;  // both claim link at cycle 2
        event.arrive = 5;
        event.linkSlots = {{route[0], 2}};
        schedule.addComm(event);
    }
    const auto result = checkSchedule(graph, raw, schedule);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.message().find("link conflict"), std::string::npos);
}

TEST(Checker, DetectsOrderingEdgeViolation)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IAdd);
    const InstrId b = builder.op(Opcode::IAdd);
    builder.edge(a, b, DepKind::Anti);
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(1);
    Schedule schedule(2, 1);
    schedule.place(a, {0, 1, 0, 2});
    schedule.place(b, {0, 1, 1, 2});  // same cycle: anti violated
    const auto result = checkSchedule(graph, vliw, schedule);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.message().find("ordering edge"), std::string::npos);
}

} // namespace
} // namespace csched
