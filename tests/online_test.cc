/**
 * @file
 * Tests for the online region-stream subsystem: deterministic arrival
 * generators and trace round-trips, the commit loop's contracts
 * (t=0 equivalence with the offline convergent scheduler, lazy
 * irrevocability, preempt-and-recommit), timeline scoring, and the
 * grid integration's byte-identity and resume guarantees.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "eval/experiment.hh"
#include "eval/online_metrics.hh"
#include "machine/machine_spec.hh"
#include "online/arrival.hh"
#include "online/online_grid.hh"
#include "online/online_scheduler.hh"
#include "online/policy.hh"
#include "runner/grid_runner.hh"
#include "runner/json_report.hh"
#include "runner/shutdown.hh"
#include "support/fault_injection.hh"
#include "workloads/workloads.hh"

namespace csched {
namespace {

std::string
tempPath(const std::string &name)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + info->test_suite_name() + "-" +
           info->name() + "-" + name;
}

std::vector<RegionArrival>
mustGenerate(const std::string &text)
{
    std::string error;
    const auto spec = parseStreamSpec(text, &error);
    EXPECT_TRUE(spec.has_value()) << error;
    auto arrivals = generateArrivals(*spec);
    EXPECT_TRUE(arrivals.ok()) << arrivals.status().toString();
    return *arrivals;
}

OnlinePolicySpec
mustParsePolicy(const std::string &text)
{
    std::string error;
    const auto policy = parseOnlinePolicy(text, &error);
    EXPECT_TRUE(policy.has_value()) << error;
    return policy.value_or(OnlinePolicySpec());
}

std::string
deterministicJson(const GridReport &report)
{
    ReportOptions options;
    options.timings = false;
    return gridReportToJson(report, options);
}

TEST(ArrivalStream, SeededGeneratorIsDeterministic)
{
    const std::string text =
        "stream:poisson:n=20:seed=9:mean-gap=300:max-weight=5:"
        "workloads=fir+vvmul";
    const auto first = mustGenerate(text);
    const auto second = mustGenerate(text);
    ASSERT_EQ(first.size(), 20u);
    ASSERT_EQ(second.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].id, static_cast<int>(i));
        EXPECT_EQ(first[i].workload, second[i].workload);
        EXPECT_EQ(first[i].release, second[i].release);
        EXPECT_EQ(first[i].weight, second[i].weight);
        EXPECT_GE(first[i].weight, 1);
        EXPECT_LE(first[i].weight, 5);
        if (i > 0)
            EXPECT_GE(first[i].release, first[i - 1].release);
    }

    // A different seed must actually change the stream.
    const auto other = mustGenerate(
        "stream:poisson:n=20:seed=10:mean-gap=300:max-weight=5:"
        "workloads=fir+vvmul");
    bool differs = false;
    for (size_t i = 0; i < other.size(); ++i)
        differs = differs || other[i].release != first[i].release ||
                  other[i].weight != first[i].weight;
    EXPECT_TRUE(differs);
}

TEST(ArrivalStream, BurstyGeneratorSharesReleasesWithinABurst)
{
    const auto arrivals = mustGenerate(
        "stream:bursty:n=8:seed=3:gap=1000:burst=4:workloads=fir");
    ASSERT_EQ(arrivals.size(), 8u);
    // Two bursts of four: releases equal within a burst and jump by
    // the configured gap between bursts.
    for (int i = 1; i < 4; ++i)
        EXPECT_EQ(arrivals[i].release, arrivals[0].release);
    for (int i = 5; i < 8; ++i)
        EXPECT_EQ(arrivals[i].release, arrivals[4].release);
    EXPECT_EQ(arrivals[4].release - arrivals[0].release, 1000);
}

TEST(ArrivalStream, TraceRoundTripsByteIdentically)
{
    std::string error;
    const auto spec = parseStreamSpec(
        "stream:poisson:n=6:seed=4:mean-gap=100:deadline-gap=5000:"
        "workloads=fir+vvmul",
        &error);
    ASSERT_TRUE(spec.has_value()) << error;
    const auto arrivals = generateArrivals(*spec);
    ASSERT_TRUE(arrivals.ok());

    const std::string text = streamTraceText(*spec, *arrivals);
    const auto parsed = parseStreamTrace(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    ASSERT_EQ(parsed->size(), arrivals->size());
    for (size_t i = 0; i < parsed->size(); ++i) {
        EXPECT_EQ((*parsed)[i].id, (*arrivals)[i].id);
        EXPECT_EQ((*parsed)[i].workload, (*arrivals)[i].workload);
        EXPECT_EQ((*parsed)[i].release, (*arrivals)[i].release);
        EXPECT_EQ((*parsed)[i].weight, (*arrivals)[i].weight);
        EXPECT_EQ((*parsed)[i].deadline, (*arrivals)[i].deadline);
        EXPECT_GT((*parsed)[i].deadline, 0);  // deadline-gap was set
    }

    // And the file-backed trace kind loads the same stream.
    const std::string path = tempPath("trace.jsonl");
    {
        std::ofstream out(path);
        out << text;
    }
    const auto replayed =
        mustGenerate("stream:trace:file=" + path);
    ASSERT_EQ(replayed.size(), arrivals->size());
    for (size_t i = 0; i < replayed.size(); ++i) {
        EXPECT_EQ(replayed[i].release, (*arrivals)[i].release);
        EXPECT_EQ(replayed[i].weight, (*arrivals)[i].weight);
    }
}

TEST(ArrivalStream, RejectsMalformedSpecsAndTraces)
{
    std::string error;
    EXPECT_FALSE(parseStreamSpec("stream:noise:n=4", &error));
    EXPECT_FALSE(parseStreamSpec("stream:poisson:n=0", &error));
    EXPECT_FALSE(
        parseStreamSpec("stream:poisson:n=4:workloads=nosuch", &error));
    EXPECT_FALSE(parseStreamSpec("stream:trace", &error));
    EXPECT_FALSE(isStreamWorkload("fir"));
    EXPECT_TRUE(isStreamWorkload("stream:poisson:n=4"));

    // Non-dense ids.
    const std::string bad_ids =
        "{\"schema\": \"csched-stream-v1\", \"spec\": \"x\", "
        "\"count\": 1}\n"
        "{\"id\": 3, \"workload\": \"fir\", \"release\": 0, "
        "\"weight\": 1, \"deadline\": -1}\n";
    EXPECT_FALSE(parseStreamTrace(bad_ids).ok());

    // Decreasing releases.
    const std::string bad_order =
        "{\"schema\": \"csched-stream-v1\", \"spec\": \"x\", "
        "\"count\": 2}\n"
        "{\"id\": 0, \"workload\": \"fir\", \"release\": 10, "
        "\"weight\": 1, \"deadline\": -1}\n"
        "{\"id\": 1, \"workload\": \"fir\", \"release\": 5, "
        "\"weight\": 1, \"deadline\": -1}\n";
    EXPECT_FALSE(parseStreamTrace(bad_order).ok());
}

TEST(OnlinePolicy, ParsesNamesAndOptions)
{
    for (const std::string &name : knownOnlinePolicyNames()) {
        EXPECT_TRUE(isOnlinePolicyName(name)) << name;
        const auto policy = mustParsePolicy(name);
        EXPECT_EQ(policy.name, name);
    }
    EXPECT_FALSE(isOnlinePolicyName("convergent"));
    EXPECT_TRUE(isOnlinePolicyName("online-convergent:budget-ms=50"));

    const auto tuned = mustParsePolicy(
        "online-convergent:budget-ms=250:preempt-factor=3.5");
    EXPECT_TRUE(tuned.planAhead);
    EXPECT_EQ(tuned.decisionBudgetMs, 250);
    EXPECT_DOUBLE_EQ(tuned.preemptFactor, 3.5);

    std::string error;
    EXPECT_FALSE(parseOnlinePolicy("online-nope", &error));
    EXPECT_FALSE(
        parseOnlinePolicy("online-convergent:preempt-factor=0.5", &error));
    EXPECT_FALSE(parseOnlinePolicy("online-uas:budget-ms=-1", &error));
}

/**
 * The anchor contract: with every region released at t=0 and equal
 * weights, online-convergent degenerates to the offline convergent
 * scheduler run per region -- identical placements, cycle for cycle.
 */
TEST(OnlineScheduler, MatchesOfflineConvergentAtTimeZero)
{
    const auto machine = parseMachineSpec("vliw4");
    ASSERT_NE(machine, nullptr);

    const std::vector<std::string> names = {"vvmul", "fir", "jacobi"};
    std::vector<RegionArrival> arrivals;
    for (size_t i = 0; i < names.size(); ++i)
        arrivals.push_back(RegionArrival{static_cast<int>(i), names[i],
                                         /*release=*/0, /*weight=*/1,
                                         /*deadline=*/-1});

    const auto policy = mustParsePolicy("online-convergent");
    const auto run = runOnline(*machine, policy, arrivals);
    ASSERT_TRUE(run.ok()) << run.status().toString();
    ASSERT_EQ(run->commits.size(), names.size());
    EXPECT_EQ(run->preemptions, 0);
    EXPECT_EQ(run->fallbackDecisions, 0);

    // Every commit's internal schedule must be byte-identical to the
    // offline convergent run on the same region.
    const ConvergentAlgorithm offline(*machine);
    int expected_start = 0;
    std::vector<int> makespans;
    for (const OnlineCommit &commit : run->commits) {
        const WorkloadSpec *workload = tryFindWorkload(commit.workload);
        ASSERT_NE(workload, nullptr);
        const DependenceGraph graph = workload->build(
            machine->numClusters(), machine->numClusters());
        const RunResult reference =
            runAndCheck(offline, graph, *machine);

        EXPECT_EQ(commit.makespan, reference.makespan);
        EXPECT_EQ(commit.instructions, reference.instructions);
        const Schedule &expect = reference.result.schedule;
        ASSERT_EQ(commit.schedule.numInstructions(),
                  expect.numInstructions());
        for (int id = 0; id < expect.numInstructions(); ++id) {
            EXPECT_EQ(commit.schedule.clusterOf(id),
                      expect.clusterOf(id))
                << commit.workload << " instr " << id;
            EXPECT_EQ(commit.schedule.cycleOf(id), expect.cycleOf(id))
                << commit.workload << " instr " << id;
        }

        // Back-to-back packing from cycle 0.
        EXPECT_EQ(commit.start, expected_start);
        expected_start += commit.makespan;
        makespans.push_back(commit.makespan);
    }

    // Equal weights make WSPT shortest-makespan-first.
    for (size_t i = 1; i < makespans.size(); ++i)
        EXPECT_LE(makespans[i - 1], makespans[i]);
}

TEST(OnlineScheduler, LazyFifoCommitsInArrivalOrder)
{
    const auto machine = parseMachineSpec("vliw2");
    ASSERT_NE(machine, nullptr);

    std::vector<RegionArrival> arrivals;
    arrivals.push_back(RegionArrival{0, "fir", 0, 1, -1});
    arrivals.push_back(RegionArrival{1, "vvmul", 1, 8, -1});
    arrivals.push_back(RegionArrival{2, "fir", 2, 4, -1});

    const auto run =
        runOnline(*machine, mustParsePolicy("online-uas"), arrivals);
    ASSERT_TRUE(run.ok()) << run.status().toString();
    ASSERT_EQ(run->commits.size(), 3u);
    EXPECT_EQ(run->preemptions, 0);
    for (size_t i = 0; i < run->commits.size(); ++i) {
        // FIFO ignores weights: commit order is arrival order, and a
        // commit can never start before its release or overlap its
        // predecessor.
        EXPECT_EQ(run->commits[i].regionId, static_cast<int>(i));
        EXPECT_GE(run->commits[i].start, run->commits[i].release);
        if (i > 0)
            EXPECT_GE(run->commits[i].start,
                      run->commits[i - 1].end());
    }
}

TEST(OnlineScheduler, PreemptsUnstartedCommitsForAHeavyArrival)
{
    const auto machine = parseMachineSpec("vliw2");
    ASSERT_NE(machine, nullptr);

    // Three equal light regions commit back-to-back at t=0; a weight-8
    // region arriving at t=1 (inside the first region's run) is >= 2x
    // the lightest unstarted commit, so the unstarted tail must be
    // rolled back and the newcomer inserted ahead of it.
    std::vector<RegionArrival> arrivals;
    arrivals.push_back(RegionArrival{0, "fir", 0, 1, -1});
    arrivals.push_back(RegionArrival{1, "fir", 0, 1, -1});
    arrivals.push_back(RegionArrival{2, "fir", 0, 1, -1});
    arrivals.push_back(RegionArrival{3, "vvmul", 1, 8, -1});

    const auto run = runOnline(
        *machine, mustParsePolicy("online-convergent"), arrivals);
    ASSERT_TRUE(run.ok()) << run.status().toString();
    ASSERT_EQ(run->commits.size(), 4u);
    EXPECT_EQ(run->preemptions, 2);

    // The started region keeps its slot; the heavy region runs before
    // both preempted light ones.
    EXPECT_EQ(run->commits[0].regionId, 0);
    EXPECT_EQ(run->commits[1].regionId, 3);
    EXPECT_EQ(run->commits[2].regionId, 1);
    EXPECT_EQ(run->commits[3].regionId, 2);
    for (size_t i = 1; i < run->commits.size(); ++i)
        EXPECT_EQ(run->commits[i].start, run->commits[i - 1].end());
}

TEST(OnlineMetrics, ScoresATimeline)
{
    OnlineCommit a{/*regionId=*/0, "fir",   /*release=*/0, /*weight=*/2,
                   /*deadline=*/-1, /*start=*/0,  /*makespan=*/10,
                   /*instructions=*/5, /*criticalPathLength=*/4,
                   /*fallback=*/false, Schedule(0, 1)};
    OnlineCommit b{/*regionId=*/1, "vvmul", /*release=*/3, /*weight=*/1,
                   /*deadline=*/12, /*start=*/10, /*makespan=*/6,
                   /*instructions=*/7, /*criticalPathLength=*/6,
                   /*fallback=*/false, Schedule(0, 1)};
    const auto metrics = computeOnlineMetrics({a, b});
    EXPECT_EQ(metrics.regions, 2);
    EXPECT_EQ(metrics.instructions, 12);
    EXPECT_EQ(metrics.makespan, 16);
    // 2*10 + 1*16
    EXPECT_EQ(metrics.weightedCompletion, 36);
    // flows: 10-0 and 16-3
    EXPECT_EQ(metrics.maxFlowTime, 13);
    EXPECT_DOUBLE_EQ(metrics.meanFlowTime, 11.5);
    // b finished at 16 > deadline 12
    EXPECT_EQ(metrics.deadlineMisses, 1);
    EXPECT_EQ(metrics.maxCriticalPathLength, 6);

    const auto empty = computeOnlineMetrics({});
    EXPECT_EQ(empty.regions, 0);
    EXPECT_EQ(empty.makespan, 0);
    EXPECT_DOUBLE_EQ(empty.meanFlowTime, 0.0);
}

TEST(OnlineGrid, MismatchedAxesAreInvalidSpecOutcomes)
{
    // Stream workload with an offline algorithm: the job is routed to
    // the online runner, which must record InvalidSpec -- not crash.
    GridSpec grid;
    grid.workloads = {"stream:poisson:n=2:seed=1:workloads=fir"};
    grid.machines = {"vliw2"};
    grid.algorithms = {*parseAlgorithmSpec("uas")};
    grid.computeSpeedup = false;
    const auto report = runGrid(grid);
    ASSERT_EQ(report.results.size(), 1u);
    EXPECT_EQ(report.results[0].outcome, JobOutcome::Failed);
    EXPECT_EQ(report.results[0].error, ErrorCode::InvalidSpec);

    // And the mirror image: an online policy on an offline workload.
    GridSpec mirror;
    mirror.workloads = {"fir"};
    mirror.machines = {"vliw2"};
    mirror.algorithms = {*parseAlgorithmSpec("online-uas")};
    mirror.computeSpeedup = false;
    const auto mirrored = runGrid(mirror);
    ASSERT_EQ(mirrored.results.size(), 1u);
    EXPECT_EQ(mirrored.results[0].outcome, JobOutcome::Failed);
    EXPECT_EQ(mirrored.results[0].error, ErrorCode::InvalidSpec);
}

OnlineGridSpec
smallOnlineGrid(int jobs)
{
    OnlineGridSpec spec;
    spec.streams = {
        "stream:bursty:n=8:seed=5:gap=300:burst=3:workloads=fir+vvmul"};
    spec.machines = {"vliw2", "vliw4"};
    spec.policies = {"online-convergent", "online-uas"};
    spec.jobs = jobs;
    return spec;
}

TEST(OnlineGrid, ByteIdenticalAcrossThreadCounts)
{
    const auto serial = runOnlineGrid(smallOnlineGrid(1));
    const auto parallel = runOnlineGrid(smallOnlineGrid(4));
    ASSERT_TRUE(serial.allOk());
    EXPECT_EQ(deterministicJson(serial), deterministicJson(parallel));

    // Online cells carry online metrics; sanity-check one result.
    for (const JobResult &job : serial.results) {
        EXPECT_EQ(job.regions, 8);
        EXPECT_GT(job.weightedCompletion, 0);
        EXPECT_GT(job.makespan, 0);
        // assignment doubles as region ids in timeline order.
        EXPECT_EQ(job.assignment.size(), 8u);
    }
}

TEST(OnlineGrid, JournalResumeReplaysByteIdentically)
{
    clearInterrupt();
    const std::string path = tempPath("journal.jsonl");

    auto journaled = smallOnlineGrid(2);
    journaled.journalPath = path;
    const auto first = runOnlineGrid(journaled);
    ASSERT_TRUE(first.allOk());

    auto resumed_spec = smallOnlineGrid(2);
    resumed_spec.journalPath = path;
    resumed_spec.resume = true;
    const auto resumed = runOnlineGrid(resumed_spec);
    EXPECT_EQ(resumed.replayed,
              static_cast<int>(first.results.size()));
    EXPECT_EQ(deterministicJson(resumed), deterministicJson(first));
}

TEST(OnlineGrid, RejectsMalformedAxes)
{
    auto bad_stream = smallOnlineGrid(1);
    bad_stream.streams = {"stream:poisson:n=0"};
    EXPECT_FALSE(makeOnlineGrid(bad_stream).ok());

    auto bad_policy = smallOnlineGrid(1);
    bad_policy.policies = {"online-nope"};
    EXPECT_FALSE(makeOnlineGrid(bad_policy).ok());

    auto offline_policy = smallOnlineGrid(1);
    offline_policy.policies = {"convergent"};
    EXPECT_FALSE(makeOnlineGrid(offline_policy).ok());
}

// ---- Mid-run degradation -------------------------------------------

TEST(OnlinePolicy, ParsesDegradeOptions)
{
    const auto policy = mustParsePolicy(
        "online-uas:degrade-at=500:degrade-tiles=3+7");
    EXPECT_EQ(policy.degradeAt, 500);
    EXPECT_EQ(policy.degradeTiles, (std::vector<int>{3, 7}));

    std::string error;
    EXPECT_FALSE(
        parseOnlinePolicy("online-uas:degrade-at=500", &error));
    EXPECT_NE(error.find("must be given together"), std::string::npos);
    EXPECT_FALSE(
        parseOnlinePolicy("online-uas:degrade-tiles=3", &error));
    EXPECT_FALSE(
        parseOnlinePolicy("online-uas:degrade-at=-2:degrade-tiles=3",
                          &error));
    EXPECT_FALSE(parseOnlinePolicy(
        "online-uas:degrade-at=5:degrade-tiles=", &error));
}

TEST(OnlineScheduler, ArmedDegradePolicyNeedsTheDegradedMachine)
{
    const auto machine = parseMachineSpec("raw4x4");
    ASSERT_NE(machine, nullptr);
    std::vector<RegionArrival> arrivals;
    arrivals.push_back(RegionArrival{0, "fir", 0, 1, -1});
    const auto policy =
        mustParsePolicy("online-uas:degrade-at=10:degrade-tiles=5");
    const auto run = runOnline(*machine, policy, arrivals);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), ErrorCode::InvalidSpec);
}

/**
 * Shared scenario for the degradation tests: a fir/vvmul stream on a
 * 4x4 mesh; when the policy arms a degrade event, the post-event
 * machine is built through the extra_dead_clusters hook, exactly as
 * the online grid does.
 */
StatusOr<OnlineRunResult>
degradeRun(const std::string &policy_text)
{
    const auto machine = parseMachineSpec("raw4x4");
    EXPECT_NE(machine, nullptr);
    const auto arrivals = mustGenerate(
        "stream:poisson:n=10:seed=3:mean-gap=40:max-weight=4:"
        "workloads=fir+vvmul");
    const auto policy = mustParsePolicy(policy_text);
    std::unique_ptr<MachineModel> degraded;
    if (policy.degradeAt >= 0) {
        auto built = tryParseMachineSpec("raw4x4", policy.degradeTiles);
        EXPECT_TRUE(built.ok()) << built.status().toString();
        degraded = std::move(*built);
    }
    return runOnline(*machine, policy, arrivals, degraded.get());
}

TEST(OnlineScheduler, MidRunTileLossReplansLazyCommits)
{
    const int degrade_at = 120;
    const auto baseline = degradeRun("online-uas");
    ASSERT_TRUE(baseline.ok()) << baseline.status().toString();
    const auto run = degradeRun(
        "online-uas:degrade-at=120:degrade-tiles=5+6");
    ASSERT_TRUE(run.ok()) << run.status().toString();

    EXPECT_TRUE(run->degradeFired);
    EXPECT_FALSE(baseline->degradeFired);
    EXPECT_EQ(run->commits.size(), baseline->commits.size());

    // Commits that started strictly before the event are identical
    // to the undegraded run: started regions are never aborted.
    size_t started = 0;
    while (started < run->commits.size() &&
           run->commits[started].start < degrade_at) {
        EXPECT_EQ(run->commits[started].regionId,
                  baseline->commits[started].regionId);
        EXPECT_EQ(run->commits[started].start,
                  baseline->commits[started].start);
        EXPECT_EQ(run->commits[started].makespan,
                  baseline->commits[started].makespan);
        ++started;
    }
    ASSERT_GT(started, 0u);
    ASSERT_LT(started, run->commits.size());

    // Every post-event commit was planned on the surviving machine:
    // no instruction may sit on a dead tile, and the re-planning is
    // visible in the metrics.
    EXPECT_GT(run->degradeReplans, 0);
    EXPECT_EQ(baseline->degradeReplans, 0);
    for (size_t i = started; i < run->commits.size(); ++i) {
        const Schedule &schedule = run->commits[i].schedule;
        EXPECT_GE(run->commits[i].start, run->commits[i].release);
        for (int id = 0; id < schedule.numInstructions(); ++id) {
            EXPECT_NE(schedule.clusterOf(id), 5)
                << "commit " << run->commits[i].regionId;
            EXPECT_NE(schedule.clusterOf(id), 6)
                << "commit " << run->commits[i].regionId;
        }
    }
}

TEST(OnlineScheduler, MidRunTileLossReplansPlanAheadCommits)
{
    const int degrade_at = 120;
    const auto run = degradeRun(
        "online-convergent:degrade-at=120:degrade-tiles=5+6");
    ASSERT_TRUE(run.ok()) << run.status().toString();
    EXPECT_TRUE(run->degradeFired);
    EXPECT_GT(run->degradeReplans, 0);
    EXPECT_EQ(run->commits.size(), 10u);
    for (const OnlineCommit &commit : run->commits) {
        EXPECT_GE(commit.start, commit.release);
        if (commit.start <= degrade_at)
            continue;
        for (int id = 0; id < commit.schedule.numInstructions(); ++id) {
            EXPECT_NE(commit.schedule.clusterOf(id), 5);
            EXPECT_NE(commit.schedule.clusterOf(id), 6);
        }
    }
}

TEST(OnlineScheduler, DegradeRunsAreDeterministic)
{
    const auto first = degradeRun(
        "online-sp:degrade-at=200:degrade-tiles=0");
    const auto second = degradeRun(
        "online-sp:degrade-at=200:degrade-tiles=0");
    ASSERT_TRUE(first.ok()) << first.status().toString();
    ASSERT_TRUE(second.ok()) << second.status().toString();
    ASSERT_EQ(first->commits.size(), second->commits.size());
    for (size_t i = 0; i < first->commits.size(); ++i) {
        EXPECT_EQ(first->commits[i].regionId,
                  second->commits[i].regionId);
        EXPECT_EQ(first->commits[i].start, second->commits[i].start);
        EXPECT_EQ(first->commits[i].makespan,
                  second->commits[i].makespan);
    }
}

TEST(OnlineScheduler, DegradeEventHitsItsFaultPoint)
{
    std::string error;
    const auto plan = FaultPlan::parse("machine.degrade=fail", &error);
    ASSERT_TRUE(plan.has_value()) << error;
    FaultScope scope(&*plan, "degrade-test");
    ScopedFaultScope bound(&scope);

    // Outside a job boundary the injected fault surfaces as the
    // StatusError the runner layer would classify.
    try {
        const auto run = degradeRun(
            "online-uas:degrade-at=120:degrade-tiles=5");
        FAIL() << "expected the machine.degrade injection to fire, got "
               << (run.ok() ? "ok" : run.status().toString());
    } catch (const StatusError &error) {
        EXPECT_EQ(error.status.code(), ErrorCode::Injected);
        EXPECT_NE(error.status.message().find("machine.degrade"),
                  std::string::npos);
    }
}

TEST(OnlineGrid, DegradeSweepIsByteIdenticalAcrossThreadCounts)
{
    auto degradeGrid = [](int jobs) {
        OnlineGridSpec spec;
        spec.streams = {"stream:poisson:n=8:seed=3:mean-gap=40:"
                        "max-weight=4:workloads=fir+vvmul"};
        spec.machines = {"raw4x4", "raw4x4/faults=tiles:2+9"};
        spec.policies = {"online-uas:degrade-at=120:degrade-tiles=5",
                         "online-convergent"};
        spec.jobs = jobs;
        return spec;
    };
    const auto serial = runOnlineGrid(degradeGrid(1));
    const auto parallel = runOnlineGrid(degradeGrid(4));
    ASSERT_TRUE(serial.allOk());
    EXPECT_EQ(deterministicJson(serial), deterministicJson(parallel));
}

} // namespace
} // namespace csched
