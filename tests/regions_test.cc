/**
 * @file
 * Tests for multi-unit programs and cross-region live-value policies
 * (the paper's Section-5 treatment of values live across scheduling
 * regions).
 */

#include <gtest/gtest.h>

#include "eval/experiment.hh"
#include "machine/clustered_vliw.hh"
#include "machine/raw_machine.hh"
#include "regions/region_scheduler.hh"

namespace csched {
namespace {

/**
 * Two-unit program: unit A computes a value near bank 3 and exports
 * it; unit B imports it and stores it to bank 3.
 */
Program
twoUnitProgram()
{
    ProgramBuilder builder;
    builder.beginUnit("A");
    const InstrId ld = builder.load(3);
    const InstrId doubled = builder.op(Opcode::IAdd, {ld, ld});
    builder.exportValue("v", doubled);

    builder.beginUnit("B");
    const InstrId in = builder.importValue("v");
    const InstrId inc = builder.op(Opcode::IAdd, {in});
    builder.store(3, inc);
    return builder.build();
}

AlgorithmFactory
convergentFactory()
{
    return [](const MachineModel &machine) {
        return makeAlgorithm(*parseAlgorithmSpec("convergent"), machine);
    };
}

TEST(Program, BuilderTracksBoundaries)
{
    auto program = twoUnitProgram();
    EXPECT_EQ(program.numUnits(), 2);
    EXPECT_EQ(program.unit(0).liveOuts.size(), 1u);
    EXPECT_EQ(program.unit(1).liveIns.size(), 1u);
    EXPECT_EQ(program.unit(0).name, "A");
}

TEST(Program, RepeatedImportShared)
{
    ProgramBuilder builder;
    builder.beginUnit("A");
    builder.exportValue("v", builder.op(Opcode::Const));
    builder.beginUnit("B");
    const InstrId first = builder.importValue("v");
    const InstrId second = builder.importValue("v");
    EXPECT_EQ(first, second);
    builder.op(Opcode::IAdd, {first});
    (void)builder.build();
}

TEST(ProgramDeathTest, ImportWithoutExportIsFatal)
{
    ProgramBuilder builder;
    builder.beginUnit("A");
    const InstrId in = builder.importValue("ghost");
    builder.op(Opcode::IAdd, {in});
    EXPECT_DEATH(builder.build(), "before any export");
}

TEST(RegionScheduler, FirstClusterPinsEverythingToZero)
{
    auto program = twoUnitProgram();
    const ClusteredVliwMachine vliw(4);
    const auto result =
        scheduleProgram(program, vliw, convergentFactory(),
                        LiveValuePolicy::FirstCluster);
    ASSERT_EQ(result.schedules.size(), 2u);
    EXPECT_EQ(result.valueCluster.at("v"), 0);
    // The definition in unit A and the import in unit B both sit on
    // cluster 0.
    const InstrId def = program.unit(0).liveOuts.at("v");
    const InstrId use = program.unit(1).liveIns.at("v");
    EXPECT_EQ(result.schedules[0].clusterOf(def), 0);
    EXPECT_EQ(result.schedules[1].clusterOf(use), 0);
}

TEST(RegionScheduler, FirstUseBindsToDefiningCluster)
{
    auto program = twoUnitProgram();
    const auto raw = RawMachine::withTiles(4);
    const auto result = scheduleProgram(
        program, raw, convergentFactory(), LiveValuePolicy::FirstUse);
    const int bound = result.valueCluster.at("v");
    EXPECT_GE(bound, 0);
    EXPECT_LT(bound, 4);
    const InstrId def = program.unit(0).liveOuts.at("v");
    const InstrId use = program.unit(1).liveIns.at("v");
    EXPECT_EQ(result.schedules[0].clusterOf(def), bound);
    EXPECT_EQ(result.schedules[1].clusterOf(use), bound);
    // The value was computed next to bank 3: first-use binding keeps
    // it there instead of dragging it to cluster 0.
    EXPECT_EQ(bound, 3);
}

TEST(RegionScheduler, TotalCyclesIsSumOfUnits)
{
    auto program = twoUnitProgram();
    const ClusteredVliwMachine vliw(2);
    const auto result =
        scheduleProgram(program, vliw, convergentFactory(),
                        LiveValuePolicy::FirstCluster);
    EXPECT_EQ(result.totalCycles,
              result.schedules[0].makespan() +
                  result.schedules[1].makespan());
}

TEST(RegionScheduler, ChainedUnitsPropagateBindings)
{
    // v flows A -> B -> C; B re-exports it under a new name.
    ProgramBuilder builder;
    builder.beginUnit("A");
    builder.exportValue("v", builder.op(Opcode::Const));
    builder.beginUnit("B");
    const InstrId in_b = builder.importValue("v");
    const InstrId w = builder.op(Opcode::IAdd, {in_b});
    builder.exportValue("w", w);
    builder.beginUnit("C");
    const InstrId in_c = builder.importValue("w");
    builder.store(1, in_c);
    auto program = builder.build();

    const ClusteredVliwMachine vliw(4);
    const auto result =
        scheduleProgram(program, vliw, convergentFactory(),
                        LiveValuePolicy::FirstUse);
    ASSERT_EQ(result.schedules.size(), 3u);
    EXPECT_EQ(result.schedules[2].clusterOf(
                  program.unit(2).liveIns.at("w")),
              result.valueCluster.at("w"));
}

TEST(RegionSchedulerDeathTest, ProgramCannotBeScheduledTwice)
{
    auto program = twoUnitProgram();
    const ClusteredVliwMachine vliw(2);
    (void)scheduleProgram(program, vliw, convergentFactory(),
                          LiveValuePolicy::FirstCluster);
    EXPECT_DEATH(scheduleProgram(program, vliw, convergentFactory(),
                                 LiveValuePolicy::FirstCluster),
                 "twice");
}

TEST(RegionScheduler, WorksWithBaselineAlgorithms)
{
    auto program = twoUnitProgram();
    const ClusteredVliwMachine vliw(4);
    const auto factory = [](const MachineModel &machine) {
        return makeAlgorithm(*parseAlgorithmSpec("uas"), machine);
    };
    const auto result = scheduleProgram(
        program, vliw, factory, LiveValuePolicy::FirstCluster);
    EXPECT_GT(result.totalCycles, 0);
}

} // namespace
} // namespace csched
