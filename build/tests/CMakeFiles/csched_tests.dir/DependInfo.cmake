
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bug_test.cc" "tests/CMakeFiles/csched_tests.dir/bug_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/bug_test.cc.o.d"
  "/root/repo/tests/convergent_scheduler_test.cc" "tests/CMakeFiles/csched_tests.dir/convergent_scheduler_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/convergent_scheduler_test.cc.o.d"
  "/root/repo/tests/figure1_test.cc" "tests/CMakeFiles/csched_tests.dir/figure1_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/figure1_test.cc.o.d"
  "/root/repo/tests/graph_algorithms_test.cc" "tests/CMakeFiles/csched_tests.dir/graph_algorithms_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/graph_algorithms_test.cc.o.d"
  "/root/repo/tests/graph_builder_test.cc" "tests/CMakeFiles/csched_tests.dir/graph_builder_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/graph_builder_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/csched_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/csched_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/list_scheduler_test.cc" "tests/CMakeFiles/csched_tests.dir/list_scheduler_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/list_scheduler_test.cc.o.d"
  "/root/repo/tests/machine_sweep_test.cc" "tests/CMakeFiles/csched_tests.dir/machine_sweep_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/machine_sweep_test.cc.o.d"
  "/root/repo/tests/machine_test.cc" "tests/CMakeFiles/csched_tests.dir/machine_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/machine_test.cc.o.d"
  "/root/repo/tests/opcode_test.cc" "tests/CMakeFiles/csched_tests.dir/opcode_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/opcode_test.cc.o.d"
  "/root/repo/tests/passes_test.cc" "tests/CMakeFiles/csched_tests.dir/passes_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/passes_test.cc.o.d"
  "/root/repo/tests/pcc_test.cc" "tests/CMakeFiles/csched_tests.dir/pcc_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/pcc_test.cc.o.d"
  "/root/repo/tests/preference_matrix_test.cc" "tests/CMakeFiles/csched_tests.dir/preference_matrix_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/preference_matrix_test.cc.o.d"
  "/root/repo/tests/rawcc_test.cc" "tests/CMakeFiles/csched_tests.dir/rawcc_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/rawcc_test.cc.o.d"
  "/root/repo/tests/regions_test.cc" "tests/CMakeFiles/csched_tests.dir/regions_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/regions_test.cc.o.d"
  "/root/repo/tests/register_pressure_test.cc" "tests/CMakeFiles/csched_tests.dir/register_pressure_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/register_pressure_test.cc.o.d"
  "/root/repo/tests/reservation_test.cc" "tests/CMakeFiles/csched_tests.dir/reservation_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/reservation_test.cc.o.d"
  "/root/repo/tests/schedule_checker_test.cc" "tests/CMakeFiles/csched_tests.dir/schedule_checker_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/schedule_checker_test.cc.o.d"
  "/root/repo/tests/schedule_test.cc" "tests/CMakeFiles/csched_tests.dir/schedule_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/schedule_test.cc.o.d"
  "/root/repo/tests/support_test.cc" "tests/CMakeFiles/csched_tests.dir/support_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/support_test.cc.o.d"
  "/root/repo/tests/uas_test.cc" "tests/CMakeFiles/csched_tests.dir/uas_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/uas_test.cc.o.d"
  "/root/repo/tests/visualization_test.cc" "tests/CMakeFiles/csched_tests.dir/visualization_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/visualization_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/csched_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/csched_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
