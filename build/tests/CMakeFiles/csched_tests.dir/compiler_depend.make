# Empty compiler generated dependencies file for csched_tests.
# This may be replaced when dependencies are built.
