# Empty compiler generated dependencies file for csched.
# This may be replaced when dependencies are built.
