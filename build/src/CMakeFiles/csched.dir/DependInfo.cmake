
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/bug.cc" "src/CMakeFiles/csched.dir/baseline/bug.cc.o" "gcc" "src/CMakeFiles/csched.dir/baseline/bug.cc.o.d"
  "/root/repo/src/baseline/pcc.cc" "src/CMakeFiles/csched.dir/baseline/pcc.cc.o" "gcc" "src/CMakeFiles/csched.dir/baseline/pcc.cc.o.d"
  "/root/repo/src/baseline/rawcc_clusterer.cc" "src/CMakeFiles/csched.dir/baseline/rawcc_clusterer.cc.o" "gcc" "src/CMakeFiles/csched.dir/baseline/rawcc_clusterer.cc.o.d"
  "/root/repo/src/baseline/rawcc_merger.cc" "src/CMakeFiles/csched.dir/baseline/rawcc_merger.cc.o" "gcc" "src/CMakeFiles/csched.dir/baseline/rawcc_merger.cc.o.d"
  "/root/repo/src/baseline/rawcc_partitioner.cc" "src/CMakeFiles/csched.dir/baseline/rawcc_partitioner.cc.o" "gcc" "src/CMakeFiles/csched.dir/baseline/rawcc_partitioner.cc.o.d"
  "/root/repo/src/baseline/rawcc_placer.cc" "src/CMakeFiles/csched.dir/baseline/rawcc_placer.cc.o" "gcc" "src/CMakeFiles/csched.dir/baseline/rawcc_placer.cc.o.d"
  "/root/repo/src/baseline/single_cluster_scheduler.cc" "src/CMakeFiles/csched.dir/baseline/single_cluster_scheduler.cc.o" "gcc" "src/CMakeFiles/csched.dir/baseline/single_cluster_scheduler.cc.o.d"
  "/root/repo/src/baseline/uas.cc" "src/CMakeFiles/csched.dir/baseline/uas.cc.o" "gcc" "src/CMakeFiles/csched.dir/baseline/uas.cc.o.d"
  "/root/repo/src/convergent/convergent_scheduler.cc" "src/CMakeFiles/csched.dir/convergent/convergent_scheduler.cc.o" "gcc" "src/CMakeFiles/csched.dir/convergent/convergent_scheduler.cc.o.d"
  "/root/repo/src/convergent/pass.cc" "src/CMakeFiles/csched.dir/convergent/pass.cc.o" "gcc" "src/CMakeFiles/csched.dir/convergent/pass.cc.o.d"
  "/root/repo/src/convergent/pass_registry.cc" "src/CMakeFiles/csched.dir/convergent/pass_registry.cc.o" "gcc" "src/CMakeFiles/csched.dir/convergent/pass_registry.cc.o.d"
  "/root/repo/src/convergent/passes/comm.cc" "src/CMakeFiles/csched.dir/convergent/passes/comm.cc.o" "gcc" "src/CMakeFiles/csched.dir/convergent/passes/comm.cc.o.d"
  "/root/repo/src/convergent/passes/emph_cp.cc" "src/CMakeFiles/csched.dir/convergent/passes/emph_cp.cc.o" "gcc" "src/CMakeFiles/csched.dir/convergent/passes/emph_cp.cc.o.d"
  "/root/repo/src/convergent/passes/first.cc" "src/CMakeFiles/csched.dir/convergent/passes/first.cc.o" "gcc" "src/CMakeFiles/csched.dir/convergent/passes/first.cc.o.d"
  "/root/repo/src/convergent/passes/init_time.cc" "src/CMakeFiles/csched.dir/convergent/passes/init_time.cc.o" "gcc" "src/CMakeFiles/csched.dir/convergent/passes/init_time.cc.o.d"
  "/root/repo/src/convergent/passes/level_distribute.cc" "src/CMakeFiles/csched.dir/convergent/passes/level_distribute.cc.o" "gcc" "src/CMakeFiles/csched.dir/convergent/passes/level_distribute.cc.o.d"
  "/root/repo/src/convergent/passes/load_balance.cc" "src/CMakeFiles/csched.dir/convergent/passes/load_balance.cc.o" "gcc" "src/CMakeFiles/csched.dir/convergent/passes/load_balance.cc.o.d"
  "/root/repo/src/convergent/passes/noise.cc" "src/CMakeFiles/csched.dir/convergent/passes/noise.cc.o" "gcc" "src/CMakeFiles/csched.dir/convergent/passes/noise.cc.o.d"
  "/root/repo/src/convergent/passes/path.cc" "src/CMakeFiles/csched.dir/convergent/passes/path.cc.o" "gcc" "src/CMakeFiles/csched.dir/convergent/passes/path.cc.o.d"
  "/root/repo/src/convergent/passes/path_prop.cc" "src/CMakeFiles/csched.dir/convergent/passes/path_prop.cc.o" "gcc" "src/CMakeFiles/csched.dir/convergent/passes/path_prop.cc.o.d"
  "/root/repo/src/convergent/passes/place.cc" "src/CMakeFiles/csched.dir/convergent/passes/place.cc.o" "gcc" "src/CMakeFiles/csched.dir/convergent/passes/place.cc.o.d"
  "/root/repo/src/convergent/passes/place_prop.cc" "src/CMakeFiles/csched.dir/convergent/passes/place_prop.cc.o" "gcc" "src/CMakeFiles/csched.dir/convergent/passes/place_prop.cc.o.d"
  "/root/repo/src/convergent/passes/reg_press.cc" "src/CMakeFiles/csched.dir/convergent/passes/reg_press.cc.o" "gcc" "src/CMakeFiles/csched.dir/convergent/passes/reg_press.cc.o.d"
  "/root/repo/src/convergent/preference_matrix.cc" "src/CMakeFiles/csched.dir/convergent/preference_matrix.cc.o" "gcc" "src/CMakeFiles/csched.dir/convergent/preference_matrix.cc.o.d"
  "/root/repo/src/convergent/sequences.cc" "src/CMakeFiles/csched.dir/convergent/sequences.cc.o" "gcc" "src/CMakeFiles/csched.dir/convergent/sequences.cc.o.d"
  "/root/repo/src/eval/convergence_trace.cc" "src/CMakeFiles/csched.dir/eval/convergence_trace.cc.o" "gcc" "src/CMakeFiles/csched.dir/eval/convergence_trace.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/csched.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/csched.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/speedup.cc" "src/CMakeFiles/csched.dir/eval/speedup.cc.o" "gcc" "src/CMakeFiles/csched.dir/eval/speedup.cc.o.d"
  "/root/repo/src/ir/dot_export.cc" "src/CMakeFiles/csched.dir/ir/dot_export.cc.o" "gcc" "src/CMakeFiles/csched.dir/ir/dot_export.cc.o.d"
  "/root/repo/src/ir/graph.cc" "src/CMakeFiles/csched.dir/ir/graph.cc.o" "gcc" "src/CMakeFiles/csched.dir/ir/graph.cc.o.d"
  "/root/repo/src/ir/graph_algorithms.cc" "src/CMakeFiles/csched.dir/ir/graph_algorithms.cc.o" "gcc" "src/CMakeFiles/csched.dir/ir/graph_algorithms.cc.o.d"
  "/root/repo/src/ir/graph_builder.cc" "src/CMakeFiles/csched.dir/ir/graph_builder.cc.o" "gcc" "src/CMakeFiles/csched.dir/ir/graph_builder.cc.o.d"
  "/root/repo/src/ir/instruction.cc" "src/CMakeFiles/csched.dir/ir/instruction.cc.o" "gcc" "src/CMakeFiles/csched.dir/ir/instruction.cc.o.d"
  "/root/repo/src/ir/latency_model.cc" "src/CMakeFiles/csched.dir/ir/latency_model.cc.o" "gcc" "src/CMakeFiles/csched.dir/ir/latency_model.cc.o.d"
  "/root/repo/src/ir/opcode.cc" "src/CMakeFiles/csched.dir/ir/opcode.cc.o" "gcc" "src/CMakeFiles/csched.dir/ir/opcode.cc.o.d"
  "/root/repo/src/machine/clustered_vliw.cc" "src/CMakeFiles/csched.dir/machine/clustered_vliw.cc.o" "gcc" "src/CMakeFiles/csched.dir/machine/clustered_vliw.cc.o.d"
  "/root/repo/src/machine/machine.cc" "src/CMakeFiles/csched.dir/machine/machine.cc.o" "gcc" "src/CMakeFiles/csched.dir/machine/machine.cc.o.d"
  "/root/repo/src/machine/raw_machine.cc" "src/CMakeFiles/csched.dir/machine/raw_machine.cc.o" "gcc" "src/CMakeFiles/csched.dir/machine/raw_machine.cc.o.d"
  "/root/repo/src/machine/single_cluster.cc" "src/CMakeFiles/csched.dir/machine/single_cluster.cc.o" "gcc" "src/CMakeFiles/csched.dir/machine/single_cluster.cc.o.d"
  "/root/repo/src/regions/program.cc" "src/CMakeFiles/csched.dir/regions/program.cc.o" "gcc" "src/CMakeFiles/csched.dir/regions/program.cc.o.d"
  "/root/repo/src/regions/region_scheduler.cc" "src/CMakeFiles/csched.dir/regions/region_scheduler.cc.o" "gcc" "src/CMakeFiles/csched.dir/regions/region_scheduler.cc.o.d"
  "/root/repo/src/sched/list_scheduler.cc" "src/CMakeFiles/csched.dir/sched/list_scheduler.cc.o" "gcc" "src/CMakeFiles/csched.dir/sched/list_scheduler.cc.o.d"
  "/root/repo/src/sched/priorities.cc" "src/CMakeFiles/csched.dir/sched/priorities.cc.o" "gcc" "src/CMakeFiles/csched.dir/sched/priorities.cc.o.d"
  "/root/repo/src/sched/register_pressure.cc" "src/CMakeFiles/csched.dir/sched/register_pressure.cc.o" "gcc" "src/CMakeFiles/csched.dir/sched/register_pressure.cc.o.d"
  "/root/repo/src/sched/reservation.cc" "src/CMakeFiles/csched.dir/sched/reservation.cc.o" "gcc" "src/CMakeFiles/csched.dir/sched/reservation.cc.o.d"
  "/root/repo/src/sched/schedule.cc" "src/CMakeFiles/csched.dir/sched/schedule.cc.o" "gcc" "src/CMakeFiles/csched.dir/sched/schedule.cc.o.d"
  "/root/repo/src/sched/schedule_checker.cc" "src/CMakeFiles/csched.dir/sched/schedule_checker.cc.o" "gcc" "src/CMakeFiles/csched.dir/sched/schedule_checker.cc.o.d"
  "/root/repo/src/sched/schedule_printer.cc" "src/CMakeFiles/csched.dir/sched/schedule_printer.cc.o" "gcc" "src/CMakeFiles/csched.dir/sched/schedule_printer.cc.o.d"
  "/root/repo/src/support/logging.cc" "src/CMakeFiles/csched.dir/support/logging.cc.o" "gcc" "src/CMakeFiles/csched.dir/support/logging.cc.o.d"
  "/root/repo/src/support/rng.cc" "src/CMakeFiles/csched.dir/support/rng.cc.o" "gcc" "src/CMakeFiles/csched.dir/support/rng.cc.o.d"
  "/root/repo/src/support/stats.cc" "src/CMakeFiles/csched.dir/support/stats.cc.o" "gcc" "src/CMakeFiles/csched.dir/support/stats.cc.o.d"
  "/root/repo/src/support/str.cc" "src/CMakeFiles/csched.dir/support/str.cc.o" "gcc" "src/CMakeFiles/csched.dir/support/str.cc.o.d"
  "/root/repo/src/support/table.cc" "src/CMakeFiles/csched.dir/support/table.cc.o" "gcc" "src/CMakeFiles/csched.dir/support/table.cc.o.d"
  "/root/repo/src/workloads/dense_matrix.cc" "src/CMakeFiles/csched.dir/workloads/dense_matrix.cc.o" "gcc" "src/CMakeFiles/csched.dir/workloads/dense_matrix.cc.o.d"
  "/root/repo/src/workloads/irregular.cc" "src/CMakeFiles/csched.dir/workloads/irregular.cc.o" "gcc" "src/CMakeFiles/csched.dir/workloads/irregular.cc.o.d"
  "/root/repo/src/workloads/loop_kernel.cc" "src/CMakeFiles/csched.dir/workloads/loop_kernel.cc.o" "gcc" "src/CMakeFiles/csched.dir/workloads/loop_kernel.cc.o.d"
  "/root/repo/src/workloads/random_dag.cc" "src/CMakeFiles/csched.dir/workloads/random_dag.cc.o" "gcc" "src/CMakeFiles/csched.dir/workloads/random_dag.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/csched.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/csched.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/stencils.cc" "src/CMakeFiles/csched.dir/workloads/stencils.cc.o" "gcc" "src/CMakeFiles/csched.dir/workloads/stencils.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
