file(REMOVE_RECURSE
  "libcsched.a"
)
