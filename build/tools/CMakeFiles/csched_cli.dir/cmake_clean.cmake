file(REMOVE_RECURSE
  "CMakeFiles/csched_cli.dir/csched_cli.cc.o"
  "CMakeFiles/csched_cli.dir/csched_cli.cc.o.d"
  "csched_cli"
  "csched_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csched_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
