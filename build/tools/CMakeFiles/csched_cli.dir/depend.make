# Empty dependencies file for csched_cli.
# This may be replaced when dependencies are built.
