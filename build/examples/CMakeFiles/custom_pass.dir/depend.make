# Empty dependencies file for custom_pass.
# This may be replaced when dependencies are built.
