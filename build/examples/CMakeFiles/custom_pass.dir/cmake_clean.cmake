file(REMOVE_RECURSE
  "CMakeFiles/custom_pass.dir/custom_pass.cpp.o"
  "CMakeFiles/custom_pass.dir/custom_pass.cpp.o.d"
  "custom_pass"
  "custom_pass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
