file(REMOVE_RECURSE
  "CMakeFiles/vliw_compare.dir/vliw_compare.cpp.o"
  "CMakeFiles/vliw_compare.dir/vliw_compare.cpp.o.d"
  "vliw_compare"
  "vliw_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vliw_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
