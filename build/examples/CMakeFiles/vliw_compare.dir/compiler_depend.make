# Empty compiler generated dependencies file for vliw_compare.
# This may be replaced when dependencies are built.
