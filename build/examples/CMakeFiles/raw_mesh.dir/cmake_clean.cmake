file(REMOVE_RECURSE
  "CMakeFiles/raw_mesh.dir/raw_mesh.cpp.o"
  "CMakeFiles/raw_mesh.dir/raw_mesh.cpp.o.d"
  "raw_mesh"
  "raw_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
