# Empty dependencies file for raw_mesh.
# This may be replaced when dependencies are built.
