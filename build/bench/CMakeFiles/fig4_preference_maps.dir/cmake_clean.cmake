file(REMOVE_RECURSE
  "CMakeFiles/fig4_preference_maps.dir/fig4_preference_maps.cc.o"
  "CMakeFiles/fig4_preference_maps.dir/fig4_preference_maps.cc.o.d"
  "fig4_preference_maps"
  "fig4_preference_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_preference_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
