# Empty compiler generated dependencies file for fig4_preference_maps.
# This may be replaced when dependencies are built.
