# Empty compiler generated dependencies file for fig2_graph_shapes.
# This may be replaced when dependencies are built.
