file(REMOVE_RECURSE
  "CMakeFiles/fig2_graph_shapes.dir/fig2_graph_shapes.cc.o"
  "CMakeFiles/fig2_graph_shapes.dir/fig2_graph_shapes.cc.o.d"
  "fig2_graph_shapes"
  "fig2_graph_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_graph_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
