# Empty dependencies file for table2_raw_speedup.
# This may be replaced when dependencies are built.
