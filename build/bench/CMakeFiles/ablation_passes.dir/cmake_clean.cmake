file(REMOVE_RECURSE
  "CMakeFiles/ablation_passes.dir/ablation_passes.cc.o"
  "CMakeFiles/ablation_passes.dir/ablation_passes.cc.o.d"
  "ablation_passes"
  "ablation_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
