file(REMOVE_RECURSE
  "CMakeFiles/fig7_convergence_raw.dir/fig7_convergence_raw.cc.o"
  "CMakeFiles/fig7_convergence_raw.dir/fig7_convergence_raw.cc.o.d"
  "fig7_convergence_raw"
  "fig7_convergence_raw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_convergence_raw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
