# Empty compiler generated dependencies file for fig7_convergence_raw.
# This may be replaced when dependencies are built.
