file(REMOVE_RECURSE
  "CMakeFiles/fig8_vliw_speedup.dir/fig8_vliw_speedup.cc.o"
  "CMakeFiles/fig8_vliw_speedup.dir/fig8_vliw_speedup.cc.o.d"
  "fig8_vliw_speedup"
  "fig8_vliw_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_vliw_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
