# Empty compiler generated dependencies file for fig9_convergence_vliw.
# This may be replaced when dependencies are built.
