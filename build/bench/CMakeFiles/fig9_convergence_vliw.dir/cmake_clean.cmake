file(REMOVE_RECURSE
  "CMakeFiles/fig9_convergence_vliw.dir/fig9_convergence_vliw.cc.o"
  "CMakeFiles/fig9_convergence_vliw.dir/fig9_convergence_vliw.cc.o.d"
  "fig9_convergence_vliw"
  "fig9_convergence_vliw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_convergence_vliw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
