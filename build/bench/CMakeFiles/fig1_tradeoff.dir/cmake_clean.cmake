file(REMOVE_RECURSE
  "CMakeFiles/fig1_tradeoff.dir/fig1_tradeoff.cc.o"
  "CMakeFiles/fig1_tradeoff.dir/fig1_tradeoff.cc.o.d"
  "fig1_tradeoff"
  "fig1_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
