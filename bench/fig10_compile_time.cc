/**
 * @file
 * Figure 10: compile-time scalability of PCC, UAS, and convergent
 * scheduling vs input size on the clustered VLIW.
 *
 * The paper's claim: UAS and convergent scheduling take about the same
 * time and scale considerably better than PCC, whose iterative descent
 * re-estimates the schedule for every candidate component move.  Run
 * under google-benchmark; each benchmark is one (algorithm, size)
 * point on the paper's log-log plot.  Instruction counts sweep the
 * same range as the figure (up to ~2000).
 */

#include <benchmark/benchmark.h>

#include <map>

#include "eval/experiment.hh"
#include "machine/clustered_vliw.hh"
#include "workloads/random_dag.hh"

using namespace csched;

namespace {

/** Shared input graphs, one per size, built once. */
const DependenceGraph &
graphOfSize(int size)
{
    static std::map<int, DependenceGraph> cache;
    auto it = cache.find(size);
    if (it == cache.end()) {
        RandomDagOptions options;
        options.numInstructions = size;
        options.width = std::max(4, size / 24);
        options.memFraction = 0.3;
        options.banks = 4;
        options.preplaceClusters = 4;
        options.seed = 1234;
        it = cache.emplace(size, makeRandomDag(options)).first;
    }
    return it->second;
}

void
runAlgorithm(benchmark::State &state, const char *spec)
{
    const ClusteredVliwMachine vliw(4);
    const auto &graph = graphOfSize(static_cast<int>(state.range(0)));
    const auto algorithm = makeAlgorithm(*parseAlgorithmSpec(spec), vliw);
    int makespan = 0;
    for (auto _ : state) {
        makespan = algorithm->schedule(graph).makespan();
        benchmark::DoNotOptimize(makespan);
    }
    state.counters["instructions"] =
        static_cast<double>(graph.numInstructions());
    state.counters["makespan"] = static_cast<double>(makespan);
}

void
BM_Convergent(benchmark::State &state)
{
    runAlgorithm(state, "convergent");
}

void
BM_Uas(benchmark::State &state)
{
    runAlgorithm(state, "uas");
}

void
BM_Pcc(benchmark::State &state)
{
    runAlgorithm(state, "pcc");
}

} // namespace

BENCHMARK(BM_Convergent)->Arg(125)->Arg(250)->Arg(500)->Arg(1000)
    ->Arg(2000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Uas)->Arg(125)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Pcc)->Arg(125)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
