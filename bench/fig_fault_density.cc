/**
 * @file
 * Fault-density sweep: how gracefully each algorithm degrades as an
 * 8x8 Raw mesh loses tiles.
 *
 * For every fault density in {0, 5, 10, 15, 20, 25, 30}% dead tiles
 * (seeded fault maps, so the dead set is a deterministic function of
 * the spec text) and every algorithm in {convergent, uas, pcc,
 * rawcc}, runs a small Raw workload suite and reports the per-density
 * geomean speedup over a single tile plus the retained fraction of
 * the algorithm's own fault-free speedup.  The whole
 * (workload x machine x algorithm) grid runs through the parallel
 * experiment runner, so the numbers are byte-identical at any --jobs
 * value, under --isolate, --hosts, and journal resume (the degraded
 * machines are rebuilt from spec text on whichever worker gets the
 * job).
 */

#include <iostream>
#include <map>

#include "runner/grid_runner.hh"
#include "support/stats.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

using namespace csched;

namespace {

const int kDensities[] = {0, 5, 10, 15, 20, 25, 30};

std::string
machineAt(int density)
{
    if (density == 0)
        return "raw8x8";
    return "raw8x8/faults=seed:12,tiles:" + std::to_string(density) +
           "%";
}

} // namespace

int
main()
{
    GridSpec grid;
    grid.workloads = {"jacobi", "life", "mxm", "sha"};
    for (const int density : kDensities)
        grid.machines.push_back(machineAt(density));
    grid.algorithms = {
        *parseAlgorithmSpec("convergent"), *parseAlgorithmSpec("uas"),
        *parseAlgorithmSpec("pcc"), *parseAlgorithmSpec("rawcc")};
    grid.jobs = 0;  // hardware concurrency
    const GridReport report = runGrid(grid);

    // speedup[machine][algorithm] -> per-workload speedups
    std::map<std::string, std::map<std::string, std::vector<double>>>
        speedups;
    for (const auto &job : report.results) {
        if (!job.ok()) {
            std::cerr << "fault-density: " << job.workload << "/"
                      << job.machine << "/" << job.algorithm << ": "
                      << job.diagnostic << "\n";
            return 1;
        }
        speedups[job.machine][job.algorithm].push_back(job.speedup);
    }

    const std::vector<std::string> algorithms{"convergent", "uas",
                                              "pcc", "rawcc"};
    std::map<std::string, double> pristine;
    for (const auto &algorithm : algorithms)
        pristine[algorithm] =
            geomean(speedups.at(machineAt(0)).at(algorithm));

    std::cout << "Fault-density sweep: geomean speedup over one tile "
              << "on an 8x8 Raw mesh\n(" << join(grid.workloads, ", ")
              << "; seeded fault maps, seed 12)\n\n";
    std::vector<std::string> headers{"dead tiles"};
    for (const auto &algorithm : algorithms) {
        headers.push_back(algorithm);
        headers.push_back("retained");
    }
    TablePrinter table(headers);
    for (const int density : kDensities) {
        std::vector<std::string> row{std::to_string(density) + "%"};
        for (const auto &algorithm : algorithms) {
            const double mean =
                geomean(speedups.at(machineAt(density)).at(algorithm));
            row.push_back(formatDouble(mean, 2));
            row.push_back(formatDouble(
                100.0 * mean / pristine.at(algorithm), 0) + "%");
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\nretained = percentage of the algorithm's own "
              << "fault-free geomean speedup.\n";
    return 0;
}
