/**
 * @file
 * Ablation study (our addition; supports the paper's Section-4 design
 * discussion).  Four experiments on the 16-tile Raw machine and the
 * 4-cluster VLIW:
 *
 *  1. drop-one-pass: remove each pass from the Table-1 sequence and
 *     report the geomean speedup, showing what each heuristic buys;
 *  2. noise amplitude sweep (VLIW): symmetry breaking matters, but
 *     too much noise destroys structure;
 *  3. LEVEL granularity sweep (Raw): the distance g at which
 *     neighbours are kept together;
 *  4. PATHPROP confidence threshold sweep (Raw): when propagation
 *     stops, quiescence vs drag.
 *
 * Plus two extensions beyond the paper: REGPRESS (register-pressure
 * balancing, the paper's future-work direction) appended to the Raw
 * pipeline, and BUG (Ellis '86) as an additional VLIW baseline.
 */

#include <iostream>

#include "baseline/bug.hh"
#include "convergent/sequences.hh"
#include "eval/experiment.hh"
#include "eval/speedup.hh"
#include "machine/clustered_vliw.hh"
#include "machine/raw_machine.hh"
#include "sched/register_pressure.hh"
#include "support/stats.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

using namespace csched;

namespace {

double
geomeanSpeedup(const MachineModel &machine,
               const std::vector<std::string> &suite,
               const std::string &sequence, const PassParams &params)
{
    std::vector<double> values;
    for (const auto &name : suite) {
        const ConvergentAlgorithm conv(machine, sequence, params);
        values.push_back(speedupOf(findWorkload(name), machine, conv));
    }
    return geomean(values);
}

/** Sequence with every instance of @p pass removed. */
std::string
without(const std::string &sequence, const std::string &pass)
{
    std::vector<std::string> kept;
    for (const auto &part : split(sequence, ','))
        if (part != pass)
            kept.push_back(part);
    return join(kept, ",");
}

} // namespace

int
main()
{
    const auto raw = RawMachine::withTiles(16);
    const ClusteredVliwMachine vliw(4);
    const auto raw_suite = rawSuiteNames();
    const auto vliw_suite = vliwSuiteNames();

    std::cout << "Ablation 1: drop-one-pass (geomean speedup)\n\n";
    {
        TablePrinter table({"dropped pass", "raw16", "vliw4"});
        const double raw_full = geomeanSpeedup(
            raw, raw_suite, rawPassSequence(), rawPassParams());
        const double vliw_full = geomeanSpeedup(
            vliw, vliw_suite, vliwPassSequence(), vliwPassParams());
        table.addRow({"(none: full sequence)",
                      formatDouble(raw_full, 2),
                      formatDouble(vliw_full, 2)});
        for (const char *pass :
             {"NOISE", "FIRST", "PATH", "COMM", "PLACE", "PLACEPROP",
              "LOAD", "LEVEL", "PATHPROP"}) {
            const auto raw_seq = without(rawPassSequence(), pass);
            const auto vliw_seq = without(vliwPassSequence(), pass);
            const double r =
                raw_seq == rawPassSequence()
                    ? raw_full
                    : geomeanSpeedup(raw, raw_suite, raw_seq,
                                     rawPassParams());
            const double v =
                vliw_seq == vliwPassSequence()
                    ? vliw_full
                    : geomeanSpeedup(vliw, vliw_suite, vliw_seq,
                                     vliwPassParams());
            table.addRow({pass, formatDouble(r, 2),
                          formatDouble(v, 2)});
        }
        table.print(std::cout);
    }

    std::cout << "\nAblation 2: NOISE amplitude (vliw4 geomean)\n\n";
    {
        TablePrinter table({"amplitude", "vliw4"});
        for (double amplitude : {0.0, 0.1, 0.3, 1.0, 3.0}) {
            PassParams params = vliwPassParams();
            params.noiseAmplitude = amplitude;
            table.addRow({formatDouble(amplitude, 1),
                          formatDouble(
                              geomeanSpeedup(vliw, vliw_suite,
                                             vliwPassSequence(),
                                             params),
                              2)});
        }
        table.print(std::cout);
    }

    std::cout << "\nAblation 3: LEVEL granularity g (raw16 geomean)\n\n";
    {
        TablePrinter table({"granularity", "raw16"});
        for (int g : {1, 2, 3, 4}) {
            PassParams params = rawPassParams();
            params.levelGranularity = g;
            table.addRow({std::to_string(g),
                          formatDouble(
                              geomeanSpeedup(raw, raw_suite,
                                             rawPassSequence(),
                                             params),
                              2)});
        }
        table.print(std::cout);
    }

    std::cout << "\nAblation 4: PATHPROP confidence threshold "
              << "(raw16 geomean)\n\n";
    {
        TablePrinter table({"threshold", "raw16"});
        for (double threshold : {1.1, 1.2, 1.5, 2.0, 4.0}) {
            PassParams params = rawPassParams();
            params.pathPropConfidence = threshold;
            table.addRow({formatDouble(threshold, 1),
                          formatDouble(
                              geomeanSpeedup(raw, raw_suite,
                                             rawPassSequence(),
                                             params),
                              2)});
        }
        table.print(std::cout);
    }

    std::cout << "\nExtension 1: REGPRESS appended to Table 1 "
              << "(geomean speedup + register budget violations on raw16)\n\n";
    {
        TablePrinter table({"pipeline", "raw16",
                            "tiles over 32-reg budget"});
        for (const bool with_regpress : {false, true}) {
            const std::string sequence =
                with_regpress ? rawPassSequence() + ",REGPRESS,COMM"
                              : rawPassSequence();
            int over_budget = 0;
            std::vector<double> values;
            for (const auto &name : raw_suite) {
                const auto &spec = findWorkload(name);
                const ConvergentAlgorithm conv(raw, sequence,
                                               rawPassParams());
                values.push_back(speedupOf(spec, raw, conv));
                const auto graph = spec.build(16, 16);
                over_budget +=
                    analyzePressure(graph, conv.schedule(graph))
                        .clustersOverBudget(
                            raw.registersPerCluster());
            }
            table.addRow({with_regpress ? "Table 1 + REGPRESS"
                                        : "Table 1",
                          formatDouble(geomean(values), 2),
                          std::to_string(over_budget)});
        }
        table.print(std::cout);
    }

    std::cout << "\nExtension 2: BUG (Ellis '86) as an extra VLIW "
              << "baseline\n\n";
    {
        TablePrinter table({"scheduler", "vliw4 geomean"});
        std::vector<double> values;
        for (const auto &name : vliw_suite) {
            const BugScheduler bug(vliw);
            values.push_back(speedupOf(findWorkload(name), vliw, bug));
        }
        table.addRow({"BUG", formatDouble(geomean(values), 2)});
        table.addRow(
            {"Convergent (fig8)",
             formatDouble(geomeanSpeedup(vliw, vliw_suite,
                                         vliwPassSequence(),
                                         vliwPassParams()),
                          2)});
        table.print(std::cout);
    }
    return 0;
}
