/**
 * @file
 * Figure 8: PCC vs UAS vs convergent scheduling on the four-cluster
 * VLIW, speedups relative to a single-cluster machine, with the
 * paper's approximate bar heights alongside.  The grid itself runs
 * through the parallel experiment runner (src/runner/).
 */

#include <iostream>
#include <map>

#include "runner/grid_runner.hh"
#include "support/stats.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

using namespace csched;

int
main()
{
    GridSpec grid;
    grid.workloads = vliwSuiteNames();
    grid.machines = {"vliw4"};
    grid.algorithms = {*parseAlgorithmSpec("pcc"),
                       *parseAlgorithmSpec("uas"),
                       *parseAlgorithmSpec("convergent")};
    grid.jobs = 0;  // hardware concurrency
    const GridReport report = runGrid(grid);

    // speedup[workload][algorithm]
    std::map<std::string, std::map<std::string, double>> speedup;
    for (const auto &job : report.results)
        speedup[job.workload][job.algorithm] = job.speedup;

    std::cout << "Figure 8: speedup over one cluster on a "
              << "four-cluster VLIW\n\n";
    TablePrinter table(
        {"benchmark", "PCC", "UAS", "Convergent", "conv/UAS",
         "conv/PCC"});

    std::vector<double> pcc_v, uas_v, conv_v;
    for (const auto &name : grid.workloads) {
        const double p = speedup.at(name).at("pcc");
        const double u = speedup.at(name).at("uas");
        const double c = speedup.at(name).at("convergent");
        pcc_v.push_back(p);
        uas_v.push_back(u);
        conv_v.push_back(c);
        table.addRow({name, formatDouble(p, 2), formatDouble(u, 2),
                      formatDouble(c, 2), formatDouble(c / u, 2),
                      formatDouble(c / p, 2)});
    }
    table.print(std::cout);

    std::cout << "\ngeomeans: PCC=" << formatDouble(geomean(pcc_v), 2)
              << " UAS=" << formatDouble(geomean(uas_v), 2)
              << " Convergent=" << formatDouble(geomean(conv_v), 2)
              << "\nconvergent vs UAS: "
              << formatDouble(
                     100.0 * (geomean(conv_v) / geomean(uas_v) - 1.0),
                     1)
              << "% (paper: +14%); vs PCC: "
              << formatDouble(
                     100.0 * (geomean(conv_v) / geomean(pcc_v) - 1.0),
                     1)
              << "% (paper: +28%)\n";
    return 0;
}
