/**
 * @file
 * Figure 8: PCC vs UAS vs convergent scheduling on the four-cluster
 * VLIW, speedups relative to a single-cluster machine, with the
 * paper's approximate bar heights alongside.
 */

#include <iostream>

#include "eval/experiment.hh"
#include "eval/speedup.hh"
#include "machine/clustered_vliw.hh"
#include "support/stats.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

using namespace csched;

int
main()
{
    const ClusteredVliwMachine vliw(4);

    std::cout << "Figure 8: speedup over one cluster on a "
              << "four-cluster VLIW\n\n";
    TablePrinter table(
        {"benchmark", "PCC", "UAS", "Convergent", "conv/UAS",
         "conv/PCC"});

    std::vector<double> pcc_v, uas_v, conv_v;
    for (const auto &name : vliwSuiteNames()) {
        const auto &spec = findWorkload(name);
        const auto pcc = makeAlgorithm(AlgorithmKind::Pcc, vliw);
        const auto uas = makeAlgorithm(AlgorithmKind::Uas, vliw);
        const auto conv =
            makeAlgorithm(AlgorithmKind::Convergent, vliw);
        const double p = speedupOf(spec, vliw, *pcc);
        const double u = speedupOf(spec, vliw, *uas);
        const double c = speedupOf(spec, vliw, *conv);
        pcc_v.push_back(p);
        uas_v.push_back(u);
        conv_v.push_back(c);
        table.addRow({name, formatDouble(p, 2), formatDouble(u, 2),
                      formatDouble(c, 2), formatDouble(c / u, 2),
                      formatDouble(c / p, 2)});
    }
    table.print(std::cout);

    std::cout << "\ngeomeans: PCC=" << formatDouble(geomean(pcc_v), 2)
              << " UAS=" << formatDouble(geomean(uas_v), 2)
              << " Convergent=" << formatDouble(geomean(conv_v), 2)
              << "\nconvergent vs UAS: "
              << formatDouble(
                     100.0 * (geomean(conv_v) / geomean(uas_v) - 1.0),
                     1)
              << "% (paper: +14%); vs PCC: "
              << formatDouble(
                     100.0 * (geomean(conv_v) / geomean(pcc_v) - 1.0),
                     1)
              << "% (paper: +28%)\n";
    return 0;
}
