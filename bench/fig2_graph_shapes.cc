/**
 * @file
 * Figure 2: "different data dependence graphs have different
 * characteristics": some are thin and dominated by a few critical
 * paths, others fat and parallel.  This bench prints the shape
 * statistics of every synthetic benchmark at 16 banks, making the
 * contrast between the dense kernels (fat) and fpppp-kernel/sha
 * (long, narrow) explicit.
 */

#include <iostream>

#include "ir/graph_algorithms.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

using namespace csched;

int
main()
{
    std::cout << "Figure 2: dependence-graph shapes (16 banks)\n\n";
    TablePrinter table({"benchmark", "instrs", "edges", "CPL",
                        "levels", "avg width", "parallelism",
                        "preplaced", "shape"});
    for (const auto &spec : allWorkloads()) {
        const auto graph = spec.build(16, 16);
        const auto shape = analyzeShape(graph);
        const bool thin = shape.parallelism < 10.0;
        table.addRow({spec.name, std::to_string(shape.instructions),
                      std::to_string(shape.edges),
                      std::to_string(shape.criticalPathLength),
                      std::to_string(shape.maxLevel + 1),
                      formatDouble(shape.avgWidth, 1),
                      formatDouble(shape.parallelism, 1),
                      std::to_string(shape.preplaced),
                      thin ? "thin/narrow (2a)" : "fat/parallel (2b)"});
    }
    table.print(std::cout);
    std::cout << "\nfpppp-kernel and sha are the paper's Figure-2a"
              << " graphs; the dense\nmatrix kernels are Figure-2b.\n";
    return 0;
}
