/**
 * @file
 * Figure 7: convergence of spatial assignments on Raw.
 *
 * For every Raw-suite benchmark, prints the percentage of instructions
 * whose preferred tile is changed by each convergent pass on a 16-tile
 * machine.  As in the paper, passes that only modify temporal
 * preferences (INITTIME, EMPHCP) are excluded.  Benchmarks with useful
 * preplacement converge quickly through PLACEPROP/LOAD; fpppp-kernel
 * and sha rely on the critical-path, parallelism, and communication
 * heuristics instead.
 */

#include <iostream>

#include "eval/convergence_trace.hh"
#include "eval/experiment.hh"
#include "machine/raw_machine.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

using namespace csched;

int
main()
{
    const auto raw = RawMachine::withTiles(16);
    const ConvergentAlgorithm conv(raw);

    std::cout << "Figure 7: fraction of instructions whose preferred "
              << "tile changes per pass (16-tile Raw)\n\n";

    bool header_done = false;
    TablePrinter *table = nullptr;
    std::vector<std::string> headers{"benchmark"};
    std::vector<std::vector<std::string>> rows;

    for (const auto &name : rawSuiteNames()) {
        const auto graph = findWorkload(name).build(16, 16);
        const auto result = conv.run(graph);
        const auto steps = spatialSteps(result.trace);
        if (!header_done) {
            for (const auto &step : steps)
                headers.push_back(step.pass);
            header_done = true;
        }
        std::vector<std::string> row{name};
        for (const auto &step : steps)
            row.push_back(formatDouble(step.fractionChanged, 2));
        rows.push_back(row);
    }

    TablePrinter printer(headers);
    table = &printer;
    for (auto &row : rows)
        table->addRow(row);
    table->print(std::cout);

    std::cout << "\n(The early preplacement-driven passes do the bulk "
              << "of the movement on the dense\nkernels; later passes "
              << "quiesce, i.e. the preferences converge.)\n";
    return 0;
}
