/**
 * @file
 * Figure 4 + Table 1: convergent scheduling in action.
 *
 * Prints the Table-1 pass sequences, then replays the paper's
 * walk-through: a small kernel is pushed through the clustered-VLIW
 * pipeline, and after each pass the cluster preference map is rendered
 * as ASCII art (one row per instruction, one column per cluster; the
 * darker the glyph, the weaker the preference -- the paper's "lighter
 * = stronger" in reverse video).  Preplaced instructions are marked
 * with their home cluster on the right.
 */

#include <iostream>

#include "convergent/pass_registry.hh"
#include "convergent/preference_matrix.hh"
#include "convergent/sequences.hh"
#include "machine/clustered_vliw.hh"
#include "support/rng.hh"
#include "support/str.hh"
#include "workloads/workloads.hh"

using namespace csched;

namespace {

/** Render instruction i's cluster preferences as one text row. */
std::string
renderRow(const PreferenceMatrix &weights, InstrId i)
{
    static const char *kShades[] = {".", ":", "-", "=", "+", "*", "#",
                                    "@"};
    std::string row;
    double top = 0.0;
    for (int c = 0; c < weights.numClusters(); ++c)
        top = std::max(top, weights.spaceMarginal(i, c));
    for (int c = 0; c < weights.numClusters(); ++c) {
        const double frac =
            top > 0.0 ? weights.spaceMarginal(i, c) / top : 0.0;
        const int shade =
            std::min(7, static_cast<int>(frac * 7.999));
        row += kShades[shade];
    }
    return row;
}

} // namespace

int
main()
{
    std::cout << "Table 1: convergent pass sequences\n"
              << "  (a) Raw:  " << rawPassSequence() << "\n"
              << "  (b) VLIW: " << vliwPassSequence() << "\n\n";

    const ClusteredVliwMachine vliw(4);
    // A compact dense kernel stands in for the paper's fpppp snippet.
    const auto graph = findWorkload("fir").build(4, 4);
    const int n = graph.numInstructions();

    std::cout << "Figure 4: cluster preference maps while scheduling "
              << "fir (n=" << n << ", 4 clusters)\n"
              << "each row block: instruction x cluster preferences, "
              << "@ = strongest\n\n";

    const PassParams params = vliwPassParams();
    PreferenceMatrix weights(n, graph.criticalPathLength(), 4);
    Rng rng(params.noiseSeed);
    PassContext ctx{graph, vliw, weights, params, rng};

    // Show a representative slice of instructions (first 24) so the
    // output stays readable.
    const int shown = std::min(n, 24);
    auto dump = [&](const std::string &title) {
        std::cout << title << "\n";
        for (InstrId i = 0; i < shown; ++i) {
            std::cout << "  i" << i << (i < 10 ? "  " : " ")
                      << renderRow(weights, i);
            const auto &instr = graph.instr(i);
            if (instr.preplaced())
                std::cout << "  <- home " << instr.homeCluster;
            std::cout << "\n";
        }
        std::cout << "\n";
    };

    dump("(b) initial: uniform weights");
    for (const auto &name : split(vliwPassSequence(), ',')) {
        makePassByName(name)->run(ctx);
        dump("after " + name);
    }

    std::cout << "final spatial assignment (preferred clusters): ";
    for (InstrId i = 0; i < shown; ++i)
        std::cout << weights.preferredCluster(i);
    std::cout << "...\n";
    return 0;
}
