/**
 * @file
 * Table 2 + Figure 6: Rawcc-baseline vs convergent speedups on Raw.
 *
 * For every benchmark of the Raw suite and every tile count in
 * {2, 4, 8, 16}, prints the speedup (relative to the same kernel on a
 * single tile) of the Rawcc-style baseline partitioner ("Base") and of
 * convergent scheduling, exactly mirroring the paper's Table 2.  The
 * 16-tile columns are then re-printed as the Figure-6 series, with the
 * paper's reference numbers alongside.  The whole
 * (workload x machine x algorithm) grid runs through the parallel
 * experiment runner (src/runner/).
 */

#include <iostream>
#include <map>

#include "runner/grid_runner.hh"
#include "support/stats.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

using namespace csched;

namespace {

/** Paper's Table 2 values at 16 tiles (Base, Convergent). */
struct PaperRow
{
    const char *name;
    double base16;
    double conv16;
};

const PaperRow kPaper[] = {
    {"cholesky", 4.33, 7.06}, {"tomcatv", 3.94, 5.15},
    {"vpenta", 8.03, 9.71},   {"mxm", 7.09, 7.77},
    {"fpppp-kernel", 6.76, 5.39}, {"sha", 2.29, 1.45},
    {"swim", 6.23, 8.30},     {"jacobi", 6.39, 9.30},
    {"life", 8.48, 11.97},
};

} // namespace

int
main()
{
    GridSpec grid;
    grid.workloads = rawSuiteNames();
    grid.machines = {"raw2", "raw4", "raw8", "raw16"};
    grid.algorithms = {*parseAlgorithmSpec("rawcc"),
                       *parseAlgorithmSpec("convergent")};
    grid.jobs = 0;  // hardware concurrency
    const GridReport report = runGrid(grid);

    // speedup[workload][machine][algorithm]
    std::map<std::string,
             std::map<std::string, std::map<std::string, double>>>
        speedup;
    for (const auto &job : report.results)
        speedup[job.workload][job.machine][job.algorithm] = job.speedup;

    std::cout << "Table 2: speedup over one tile on Raw "
              << "(Base = Rawcc-style partitioner)\n\n";
    std::vector<std::string> headers{"benchmark"};
    for (const auto &machine : grid.machines)
        headers.push_back("base/" + machine.substr(3));
    for (const auto &machine : grid.machines)
        headers.push_back("conv/" + machine.substr(3));
    TablePrinter table(headers);

    std::vector<double> base16;
    std::vector<double> conv16;
    for (const auto &name : grid.workloads) {
        std::vector<std::string> row{name};
        for (const auto &machine : grid.machines)
            row.push_back(formatDouble(
                speedup.at(name).at(machine).at("rawcc"), 2));
        for (const auto &machine : grid.machines)
            row.push_back(formatDouble(
                speedup.at(name).at(machine).at("convergent"), 2));
        table.addRow(row);
        base16.push_back(speedup.at(name).at("raw16").at("rawcc"));
        conv16.push_back(
            speedup.at(name).at("raw16").at("convergent"));
    }
    table.print(std::cout);

    std::cout << "\nFigure 6: 16-tile speedups vs the paper's values\n\n";
    TablePrinter fig6({"benchmark", "base (ours)", "conv (ours)",
                       "conv/base", "base (paper)", "conv (paper)",
                       "conv/base (paper)"});
    for (size_t k = 0; k < grid.workloads.size(); ++k) {
        const auto &paper = kPaper[k];
        fig6.addRow({paper.name, formatDouble(base16[k], 2),
                     formatDouble(conv16[k], 2),
                     formatDouble(conv16[k] / base16[k], 2),
                     formatDouble(paper.base16, 2),
                     formatDouble(paper.conv16, 2),
                     formatDouble(paper.conv16 / paper.base16, 2)});
    }
    fig6.print(std::cout);

    std::cout << "\n16-tile geomean: base=" << formatDouble(
                     geomean(base16), 2)
              << "  convergent=" << formatDouble(geomean(conv16), 2)
              << "  improvement="
              << formatDouble(
                     100.0 * (geomean(conv16) / geomean(base16) - 1.0),
                     1)
              << "% (paper: +21%)\n";
    return 0;
}
