/**
 * @file
 * Figure 1: the locality-vs-parallelism tradeoff.
 *
 * Reproduces the paper's motivating example on an architecture with
 * three clusters, each with one functional unit, where communication
 * takes one cycle of latency due to the receive instruction: the
 * conservative partitioning (maximal locality) and the aggressive
 * partitioning (maximal parallelism) both take 8 cycles, while the
 * careful tradeoff takes 7.  An exhaustive search over all 3^8
 * assignments confirms that 7 is optimal.
 */

#include <algorithm>
#include <iostream>

#include "ir/graph_builder.hh"
#include "machine/single_cluster.hh"
#include "sched/list_scheduler.hh"
#include "sched/priorities.hh"
#include "sched/schedule_checker.hh"
#include "support/logging.hh"
#include "support/table.hh"

using namespace csched;

namespace {

DependenceGraph
figure1Graph()
{
    GraphBuilder builder;
    const InstrId m1 = builder.op(Opcode::IMul, {}, "1 MUL");
    const InstrId a2 = builder.op(Opcode::IAdd, {m1}, "2 ADD");
    const InstrId m3 = builder.op(Opcode::IMul, {}, "3 MUL");
    const InstrId a4 = builder.op(Opcode::IAdd, {m3}, "4 ADD");
    const InstrId m5 = builder.op(Opcode::IMul, {}, "5 MUL");
    const InstrId a6 = builder.op(Opcode::IAdd, {m5}, "6 ADD");
    const InstrId a7 = builder.op(Opcode::IAdd, {a2, a4}, "7 ADD");
    builder.op(Opcode::IAdd, {a7, a6}, "8 ADD");
    return builder.build();
}

int
makespanOf(const DependenceGraph &graph, const MachineModel &machine,
           const std::vector<int> &assignment)
{
    const ListScheduler scheduler(machine);
    const auto schedule =
        scheduler.run(graph, assignment, criticalPathPriority(graph));
    const auto check = checkSchedule(graph, machine, schedule);
    CSCHED_ASSERT(check.ok(), check.message());
    return schedule.makespan();
}

} // namespace

int
main()
{
    const UniformMachine machine(3, 1, 1);
    const auto graph = figure1Graph();

    const std::vector<int> conservative(8, 0);
    const std::vector<int> aggressive{0, 1, 2, 0, 1, 2, 0, 1};
    const std::vector<int> tradeoff{0, 0, 1, 1, 2, 2, 0, 0};

    std::cout << "Figure 1: parallelism-vs-locality tradeoff on three\n"
              << "clusters (1 FU each, 1-cycle receive latency)\n\n";

    TablePrinter table({"partitioning", "cycles", "paper"});
    table.addRow({"(a) conservative (max locality)",
                  std::to_string(makespanOf(graph, machine,
                                            conservative)),
                  "8"});
    table.addRow({"(b) aggressive (max parallelism)",
                  std::to_string(makespanOf(graph, machine,
                                            aggressive)),
                  "8"});
    table.addRow({"(c) careful tradeoff",
                  std::to_string(makespanOf(graph, machine, tradeoff)),
                  "7"});
    table.print(std::cout);

    // Exhaustive optimum over all 3^8 cluster assignments.
    int best = 1 << 30;
    std::vector<int> assignment(8, 0);
    for (int code = 0; code < 6561; ++code) {
        int rest = code;
        for (int k = 0; k < 8; ++k) {
            assignment[k] = rest % 3;
            rest /= 3;
        }
        const ListScheduler scheduler(machine);
        best = std::min(best,
                        scheduler
                            .run(graph, assignment,
                                 criticalPathPriority(graph))
                            .makespan());
    }
    std::cout << "\nexhaustive optimum over 3^8 assignments: " << best
              << " cycles (the careful tradeoff is optimal)\n";
    return 0;
}
