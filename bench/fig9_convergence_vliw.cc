/**
 * @file
 * Figure 9: convergence of spatial assignments on the clustered VLIW
 * (Chorus): the fraction of instructions whose preferred cluster is
 * changed by each convergent pass, for the VLIW suite.  Passes that
 * only modify temporal preferences are excluded, as in the paper.
 */

#include <iostream>

#include "eval/convergence_trace.hh"
#include "eval/experiment.hh"
#include "machine/clustered_vliw.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

using namespace csched;

int
main()
{
    const ClusteredVliwMachine vliw(4);
    const ConvergentAlgorithm conv(vliw);

    std::cout << "Figure 9: fraction of instructions whose preferred "
              << "cluster changes per pass (4-cluster VLIW)\n\n";

    std::vector<std::string> headers{"benchmark"};
    std::vector<std::vector<std::string>> rows;
    bool header_done = false;
    for (const auto &name : vliwSuiteNames()) {
        const auto graph = findWorkload(name).build(4, 4);
        const auto result = conv.run(graph);
        const auto steps = spatialSteps(result.trace);
        if (!header_done) {
            for (const auto &step : steps)
                headers.push_back(step.pass);
            header_done = true;
        }
        std::vector<std::string> row{name};
        for (const auto &step : steps)
            row.push_back(formatDouble(step.fractionChanged, 2));
        rows.push_back(row);
    }

    TablePrinter table(headers);
    for (auto &row : rows)
        table.addRow(row);
    table.print(std::cout);

    std::cout << "\n(NOISE scrambles the initial symmetric state; the "
              << "placement-driven passes then\npull the assignment "
              << "towards banks and the final COMM quiesces.)\n";
    return 0;
}
