/**
 * @file
 * The benchmark driver, a small subcommand-style CLI:
 *
 *   csched_bench suite [options]   grid runner (table + JSON report)
 *   csched_bench perf  [options]   perf trajectory: BENCH_*.json
 *   csched_bench list              workloads, algorithms, passes
 *
 * `suite` is the batch experiment driver: run a (workload x machine x
 * algorithm) grid on a thread pool and report a table and/or a
 * csched-grid-report-v2 JSON document.  E.g. Figure 8 is
 *
 *   csched_bench suite --suite vliw --machines vliw4 \
 *                      --algorithms pcc,uas,convergent
 *
 *   csched_bench suite [options]
 *     --workloads A,B,...   explicit workload list
 *     --suite raw|vliw|all  named workload suite (default: all)
 *     --machines S,S,...    machine specs (default vliw4)
 *     --algorithms A,A,...  algorithm specs (default convergent);
 *                           "convergent:PASS,PASS" selects a custom
 *                           pass sequence
 *     --jobs N              worker threads; 0 = hardware concurrency
 *                           (default 0).  Results are bit-identical
 *                           for every N.
 *     --json FILE           write the structured report ("-" = stdout)
 *     --no-timings          omit wall-clock fields from the JSON so
 *                           reports are byte-identical across runs
 *     --no-assignments      omit per-instruction assignment vectors
 *     --no-speedup          skip the one-cluster normalisation runs
 *     --deadline-ms N       per-attempt deadline per job; 0 = none
 *     --retries N           retry failed/timed-out jobs up to N times
 *     --isolate             run each job in a forked worker process:
 *                           a segfault, hang, or memory runaway is
 *                           contained as that cell's outcome (with
 *                           the fatal signal/exit status recorded)
 *                           instead of killing the run.  Reported
 *                           numbers are byte-identical either way.
 *     --mem-limit-mb N      RLIMIT_AS per isolated worker; 0 = none
 *     --journal FILE        append every terminal job outcome to FILE
 *                           as it completes (crash-safe JSONL)
 *     --resume              skip jobs already recorded in --journal
 *                           and replay their outcomes; the final
 *                           report is byte-identical to an
 *                           uninterrupted run
 *     --hosts CSV           execute jobs on a fleet of csched_workerd
 *                           daemons ("host:port" each) instead of
 *                           in-process; partition-tolerant (leases
 *                           reassign on host loss) and byte-identical
 *                           to an in-process run at any host count
 *     --keep-going          exit 0 even when jobs failed (the report
 *                           still marks every failed cell)
 *     --quiet               suppress the human-readable table
 *
 * A failing job never aborts the grid: its cell is marked in the table
 * and the JSON, healthy cells are salvaged, a summary goes to stderr,
 * and the exit status is 1 unless --keep-going.  SIGINT/SIGTERM drain
 * in-flight jobs, journal them, write a partial report marked
 * "interrupted", and exit 128+signum; a --resume re-run completes the
 * grid.  File outputs are atomic (tmp + fsync + rename).  (There is
 * also a hidden --inject RULES option, the deterministic
 * fault-injection harness used by the robustness tests; see
 * fault_injection.hh for the rule grammar.)
 *
 * `perf` measures the convergent-scheduler hot path and emits the
 * csched-bench-report-v1 documents of the tracked perf trajectory
 * (see runner/bench_report.hh for the schema):
 *
 *   csched_bench perf [options]
 *     --out-dir DIR         where BENCH_pass_kernels.json,
 *                           BENCH_end_to_end.json, BENCH_online.json,
 *                           BENCH_mesh.json, and BENCH_dist.json are
 *                           written (default ".")
 *     --repeats N           samples per cell, median-of-N (default 5)
 *     --quick               repeats 3 and the small cell set; the
 *                           ci.sh perf gate uses this
 *     --cells W/M[/ALG],... override the end-to-end cell list
 *     --kernel-cells W/M,.. override the pass-kernel cell list
 *     --online-cells S/M/P,..
 *                           override the online cell list (stream
 *                           spec / machine / online policy)
 *     --check               compare the end-to-end, online, mesh,
 *                           and dist medians against the baseline and
 *                           exit 1 on >threshold slowdown; prints the
 *                           per-kernel delta table as the diagnostic
 *                           on failure
 *
 * The mesh cells time the degraded-machine hot paths on a 32x32 Raw
 * mesh, fault-free and 10% degraded: machine construction (fault-map
 * materialisation plus detour-table BFS) and a full schedule+check
 * run with the fault-aware router and checker.  The dist cells fork
 * two localhost csched_workerd daemons and time a small fixed grid
 * through them against the same grid under --isolate, so the
 * remote-dispatch overhead is a gated number, not a guess.
 *     --baseline-dir DIR    where --check finds the baseline
 *                           (default: the repository checkout, ".")
 *     --threshold PCT       --check slowdown gate (default 15)
 *     --annotate-pre-rewrite FILE
 *                           attach the medians of FILE (an end-to-end
 *                           bench report measured on the pre-rewrite
 *                           engine) as preRewriteSeconds
 *
 * Invoking csched_bench with grid flags but no subcommand keeps
 * working as `suite` for one release (compatibility shim).
 */

#include <sys/prctl.h>
#include <sys/stat.h>
#include <sys/utsname.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "convergent/pass_registry.hh"
#include "dist/remote_pool.hh"
#include "dist/workerd.hh"
#include "eval/experiment.hh"
#include "eval/online_metrics.hh"
#include "machine/machine_spec.hh"
#include "online/arrival.hh"
#include "online/online_scheduler.hh"
#include "online/policy.hh"
#include "runner/bench_report.hh"
#include "runner/failure_summary.hh"
#include "runner/grid_runner.hh"
#include "runner/json_report.hh"
#include "runner/shutdown.hh"
#include "support/atomic_file.hh"
#include "support/fault_injection.hh"
#include "support/stats.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "tool_version.hh"
#include "workloads/workloads.hh"

using namespace csched;

namespace {

[[noreturn]] void
usage(const char *argv0, const std::string &why = "")
{
    if (!why.empty())
        std::cerr << argv0 << ": " << why << "\n";
    std::cerr
        << "usage: " << argv0 << " suite|perf|list [options]\n"
        << "  suite [--workloads A,B|--suite raw|vliw|all]"
        << " [--machines S,S]\n"
        << "    [--algorithms A,A] [--jobs N] [--json FILE]"
        << " [--no-timings]\n"
        << "    [--no-assignments] [--no-speedup] [--deadline-ms N]"
        << " [--retries N]\n"
        << "    [--isolate] [--mem-limit-mb N] [--journal FILE]"
        << " [--resume]\n"
        << "    [--hosts CSV] [--keep-going] [--quiet]\n"
        << "  perf [--out-dir DIR] [--repeats N] [--quick]"
        << " [--cells W/M,..]\n"
        << "    [--kernel-cells W/M,..] [--online-cells S/M/P,..]"
        << " [--check]\n"
        << "    [--baseline-dir DIR] [--threshold PCT]"
        << " [--annotate-pre-rewrite FILE]\n"
        << "  list\n";
    std::exit(2);
}

std::vector<std::string>
suiteWorkloads(const std::string &suite)
{
    if (suite == "raw")
        return rawSuiteNames();
    if (suite == "vliw")
        return vliwSuiteNames();
    if (suite == "all") {
        std::vector<std::string> names;
        for (const auto &spec : allWorkloads())
            names.push_back(spec.name);
        return names;
    }
    return {};
}

// ---- suite ---------------------------------------------------------

int
runSuite(const char *argv0, const std::vector<std::string> &args)
{
    GridSpec grid;
    grid.machines = {"vliw4"};
    grid.jobs = 0;
    std::string suite = "all";
    std::string workloads_arg;
    std::string algorithms_arg = "convergent";
    std::string json_file;
    ReportOptions report_options;
    bool quiet = false;
    bool keep_going = false;
    FaultPlan fault_plan;
    DistOptions dist_options;

    for (size_t k = 0; k < args.size(); ++k) {
        const std::string arg = args[k];
        auto next = [&]() -> std::string {
            if (k + 1 >= args.size())
                usage(argv0, arg + " needs a value");
            return args[++k];
        };
        auto nextInt = [&](const char *floor_why) -> int {
            const std::string text = next();
            int parsed = 0;
            try {
                parsed = std::stoi(text);
            } catch (...) {
                usage(argv0,
                      arg + " expects an integer, got '" + text + "'");
            }
            if (parsed < 0)
                usage(argv0, arg + floor_why);
            return parsed;
        };
        if (arg == "--workloads") {
            workloads_arg = next();
        } else if (arg == "--suite") {
            suite = next();
        } else if (arg == "--machines" || arg == "--machine") {
            // splitMachineList, not a bare split: faults= suffixes
            // carry commas of their own.
            grid.machines = splitMachineList(next());
        } else if (arg == "--algorithms" || arg == "--algorithm") {
            algorithms_arg = next();
        } else if (arg == "--jobs") {
            grid.jobs = nextInt(" must be >= 0");
        } else if (arg == "--deadline-ms") {
            grid.deadlineMs = nextInt(" must be >= 0 (0 = no deadline)");
        } else if (arg == "--retries") {
            grid.retries = nextInt(" must be >= 0");
        } else if (arg == "--isolate") {
            grid.isolate = true;
        } else if (arg == "--mem-limit-mb") {
            grid.memLimitMb =
                nextInt(" must be >= 0 (0 = unlimited)");
        } else if (arg == "--journal") {
            grid.journalPath = next();
        } else if (arg == "--resume") {
            grid.resume = true;
        } else if (arg == "--hosts") {
            grid.hosts = split(next(), ',');
        } else if (arg == "--dist-opts") {
            // Hidden: dist-client timing overrides for tests and CI
            // (see DistOptions::applyOverrides).
            const Status applied =
                DistOptions::applyOverrides(&dist_options, next());
            if (!applied.ok())
                usage(argv0, "--dist-opts: " + applied.message());
        } else if (arg == "--keep-going") {
            keep_going = true;
        } else if (arg == "--inject") {
            // Hidden: deterministic fault injection for the
            // robustness tests (see fault_injection.hh).
            std::string why;
            const auto parsed_plan = FaultPlan::parse(next(), &why);
            if (!parsed_plan.has_value())
                usage(argv0, "--inject: " + why);
            fault_plan = *parsed_plan;
        } else if (arg == "--json") {
            json_file = next();
        } else if (arg == "--no-timings") {
            report_options.timings = false;
        } else if (arg == "--no-assignments") {
            report_options.assignments = false;
        } else if (arg == "--no-speedup") {
            grid.computeSpeedup = false;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            usage(argv0, "unknown option '" + arg + "'");
        }
    }

    grid.workloads = workloads_arg.empty()
                         ? suiteWorkloads(suite)
                         : split(workloads_arg, ',');
    if (grid.workloads.empty())
        usage(argv0, "unknown suite '" + suite +
                         "' (expected raw|vliw|all)");

    // Algorithm specs may contain colons+commas ("convergent:A,B"),
    // so split on commas only outside a sequence: a part that names a
    // known algorithm starts a new spec, otherwise it continues the
    // previous spec's pass list.
    for (const auto &part : split(algorithms_arg, ',')) {
        std::string error;
        const auto parsed = parseAlgorithmSpec(part, &error);
        if (parsed.has_value()) {
            grid.algorithms.push_back(*parsed);
        } else if (!grid.algorithms.empty() &&
                   !grid.algorithms.back().sequence.empty()) {
            grid.algorithms.back().sequence += "," + trim(part);
        } else {
            usage(argv0, error);
        }
    }
    // Re-validate the stitched-together sequences.
    for (auto &spec : grid.algorithms) {
        std::string error;
        const auto parsed = parseAlgorithmSpec(spec.text(), &error);
        if (!parsed.has_value())
            usage(argv0, error);
        spec = *parsed;
    }

    if (!fault_plan.empty())
        grid.faults = &fault_plan;
    if (!grid.hosts.empty())
        grid.dist = &dist_options;
    if (grid.resume && grid.journalPath.empty())
        usage(argv0, "--resume requires --journal");

    std::string error;
    if (!validateGrid(grid, &error))
        usage(argv0, error);

    installGridSignalHandlers();
    const GridReport report = runGrid(grid);

    if (!quiet) {
        TablePrinter table({"workload", "machine", "algorithm",
                            "instrs", "makespan", "speedup", "ms"});
        for (const auto &job : report.results) {
            if (!job.ok()) {
                const std::string mark = jobOutcomeName(job.outcome);
                table.addRow({job.workload, job.machine, job.algorithm,
                              mark, mark, mark, mark});
                continue;
            }
            table.addRow(
                {job.workload, job.machine, job.algorithm,
                 std::to_string(job.instructions),
                 std::to_string(job.makespan),
                 grid.computeSpeedup ? formatDouble(job.speedup, 2)
                                     : "-",
                 formatDouble(job.seconds * 1e3, 2)});
        }
        table.print(std::cout);
        std::cout << "\n" << report.results.size() << " jobs on "
                  << report.threads << " thread"
                  << (report.threads == 1 ? "" : "s") << " in "
                  << formatDouble(report.wallSeconds, 2) << " s\n";
    }

    if (!json_file.empty()) {
        if (json_file == "-") {
            writeGridReport(std::cout, report, report_options);
        } else {
            // Driver-level fault scope so --inject can target the
            // report write itself (the jobs ran in their own scopes).
            FaultScope report_faults(grid.faults, "report");
            ScopedFaultScope report_fault_guard(&report_faults);
            const Status written = writeFileAtomic(
                json_file, gridReportToJson(report, report_options));
            if (!written.ok()) {
                std::cerr << argv0 << ": " << written.toString()
                          << "\n";
                return 1;
            }
            if (!quiet)
                std::cout << "wrote " << json_file << "\n";
        }
    }

    printFailureSummary(std::cerr, report);
    return gridExitCode(report, keep_going);
}

// ---- perf ----------------------------------------------------------

/** One perf cell: a workload on a machine under an algorithm. */
struct PerfCell
{
    std::string workload;
    std::string machine;
    std::string algorithm = "convergent";
};

std::vector<PerfCell>
parsePerfCells(const char *argv0, const std::string &text)
{
    std::vector<PerfCell> cells;
    for (const auto &part : split(text, ',')) {
        const auto fields = split(part, '/');
        if (fields.size() != 2 && fields.size() != 3)
            usage(argv0, "cell '" + part +
                             "' is not workload/machine[/algorithm]");
        PerfCell cell;
        cell.workload = fields[0];
        cell.machine = fields[1];
        if (fields.size() == 3)
            cell.algorithm = fields[2];
        cells.push_back(cell);
    }
    return cells;
}

std::optional<std::string>
readWholeFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

BenchMeta
collectMeta(int repeats)
{
    BenchMeta meta;
#ifdef CSCHED_GIT_COMMIT
    meta.commit = CSCHED_GIT_COMMIT;
#else
    meta.commit = "unknown";
#endif
#ifdef CSCHED_BUILD_TYPE
    meta.buildType = CSCHED_BUILD_TYPE;
#else
    meta.buildType = "unknown";
#endif
#ifdef CSCHED_CXX_FLAGS
    meta.flags = CSCHED_CXX_FLAGS;
#else
    meta.flags = "";
#endif
    meta.compiler = __VERSION__;
    struct utsname names;
    if (uname(&names) == 0)
        meta.host = std::string(names.sysname) + " " + names.release +
                    " " + names.machine;
    else
        meta.host = "unknown";
    meta.repeats = repeats;
    return meta;
}

/** One forked localhost csched_workerd for the dist perf cells. */
struct WorkerdChild
{
    pid_t pid = -1;
    uint16_t port = 0;
};

/**
 * Fork a csched_workerd serving on an ephemeral loopback port and
 * report the port back over a pipe.  The child dies with the bench
 * process (PDEATHSIG) or on the explicit SIGTERM of reapWorkerd().
 */
std::optional<WorkerdChild>
spawnPerfWorkerd(int workers)
{
    int fds[2];
    if (::pipe(fds) != 0)
        return std::nullopt;
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return std::nullopt;
    }
    if (pid == 0) {
        ::close(fds[0]);
        ::prctl(PR_SET_PDEATHSIG, SIGKILL);
        installServeSignalHandlers();
        WorkerdOptions options;
        options.workers = workers;
        WorkerdServer server(std::move(options));
        if (!server.start().ok())
            ::_exit(1);
        const std::string line = std::to_string(server.port());
        (void)!::write(fds[1], line.data(), line.size());
        ::close(fds[1]);
        ::_exit(server.run());
    }
    ::close(fds[1]);
    char buffer[16] = {0};
    const ssize_t got = ::read(fds[0], buffer, sizeof(buffer) - 1);
    ::close(fds[0]);
    if (got <= 0) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        return std::nullopt;
    }
    WorkerdChild child;
    child.pid = pid;
    child.port = static_cast<uint16_t>(std::atoi(buffer));
    return child;
}

void
reapWorkerd(const WorkerdChild &child)
{
    if (child.pid <= 0)
        return;
    ::kill(child.pid, SIGTERM);
    ::waitpid(child.pid, nullptr, 0);
}

/**
 * Per-pass kernel names for a trace, disambiguating repeated passes
 * by occurrence ("PATHPROP", "PATHPROP.2", "PATHPROP.3").
 */
std::vector<std::string>
kernelNames(const std::vector<PassStep> &trace)
{
    std::map<std::string, int> seen;
    std::vector<std::string> names;
    for (const auto &step : trace) {
        const int occurrence = ++seen[step.pass];
        names.push_back(occurrence == 1
                            ? step.pass
                            : step.pass + "." +
                                  std::to_string(occurrence));
    }
    return names;
}

int
runPerf(const char *argv0, const std::vector<std::string> &args)
{
    std::string out_dir = ".";
    std::string baseline_dir = ".";
    std::string annotate_file;
    int repeats = 5;
    bool quick = false;
    bool check = false;
    double threshold = 15.0;
    std::string cells_arg;
    std::string kernel_cells_arg;
    std::string online_cells_arg;

    for (size_t k = 0; k < args.size(); ++k) {
        const std::string arg = args[k];
        auto next = [&]() -> std::string {
            if (k + 1 >= args.size())
                usage(argv0, arg + " needs a value");
            return args[++k];
        };
        if (arg == "--out-dir") {
            out_dir = next();
        } else if (arg == "--baseline-dir") {
            baseline_dir = next();
        } else if (arg == "--repeats") {
            repeats = std::stoi(next());
            if (repeats < 1)
                usage(argv0, "--repeats must be >= 1");
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--threshold") {
            threshold = std::stod(next());
        } else if (arg == "--cells") {
            cells_arg = next();
        } else if (arg == "--kernel-cells") {
            kernel_cells_arg = next();
        } else if (arg == "--online-cells") {
            online_cells_arg = next();
        } else if (arg == "--annotate-pre-rewrite") {
            annotate_file = next();
        } else {
            usage(argv0, "unknown perf option '" + arg + "'");
        }
    }
    if (quick)
        repeats = std::min(repeats, 3);

    // The default cell sets: the acceptance cell (synth-wide-10k on
    // the four-cluster VLIW) plus the narrow window-stress shape and
    // three paper kernels for continuity with the figures.
    std::vector<PerfCell> e2e_cells = {
        {"synth-wide-10k", "vliw4", "convergent"},
        {"synth-narrow-2k", "vliw4", "convergent"},
        {"synth-narrow-2k", "raw4", "convergent"},
        {"mxm", "vliw4", "convergent"},
        {"cholesky", "vliw4", "convergent"},
        {"sha", "raw4", "convergent"},
    };
    std::vector<PerfCell> kernel_cells = {
        {"synth-wide-10k", "vliw4", "convergent"},
        {"synth-narrow-2k", "raw4", "convergent"},
        {"mxm", "vliw4", "convergent"},
    };
    // Online cells measure the whole commit loop -- admission,
    // per-region planning, and (for plan-ahead) preempt-and-recommit
    // -- over a deterministic arrival stream.  Stream specs are '+'
    // and ':' separated, so they survive the ','/'/' cell grammar.
    const std::string perf_stream =
        "stream:bursty:n=12:seed=11:gap=200:burst=4:"
        "workloads=fir+vvmul+jacobi";
    std::vector<PerfCell> online_cells = {
        {perf_stream, "vliw4", "online-convergent"},
        {perf_stream, "vliw4", "online-sp"},
        {perf_stream, "vliw4", "online-pcc"},
    };
    if (quick) {
        e2e_cells = {{"synth-wide-10k", "vliw4", "convergent"},
                     {"synth-narrow-2k", "raw4", "convergent"}};
        kernel_cells = {{"synth-wide-10k", "vliw4", "convergent"}};
        online_cells = {{perf_stream, "vliw4", "online-convergent"}};
    }
    if (!cells_arg.empty())
        e2e_cells = parsePerfCells(argv0, cells_arg);
    if (!kernel_cells_arg.empty())
        kernel_cells = parsePerfCells(argv0, kernel_cells_arg);
    if (!online_cells_arg.empty())
        online_cells = parsePerfCells(argv0, online_cells_arg);

    BenchReport kernels_report;
    kernels_report.kind = "pass-kernels";
    kernels_report.meta = collectMeta(repeats);
    BenchReport e2e_report;
    e2e_report.kind = "end-to-end";
    e2e_report.meta = collectMeta(repeats);
    BenchReport online_report;
    online_report.kind = "online";
    online_report.meta = collectMeta(repeats);
    BenchReport mesh_report;
    mesh_report.kind = "mesh";
    mesh_report.meta = collectMeta(repeats);
    BenchReport dist_report;
    dist_report.kind = "dist";
    dist_report.meta = collectMeta(repeats);

    auto prepare = [&](const PerfCell &cell,
                       std::unique_ptr<MachineModel> *machine,
                       std::unique_ptr<SchedulingAlgorithm> *algorithm)
        -> DependenceGraph {
        std::string error;
        *machine = parseMachineSpec(cell.machine, &error);
        if (*machine == nullptr)
            usage(argv0, error);
        const auto spec = parseAlgorithmSpec(cell.algorithm, &error);
        if (!spec.has_value())
            usage(argv0, error);
        *algorithm = makeAlgorithm(*spec, **machine);
        const WorkloadSpec *workload = tryFindWorkload(cell.workload);
        if (workload == nullptr)
            usage(argv0, "unknown workload '" + cell.workload + "'");
        const int clusters = (*machine)->numClusters();
        return workload->build(clusters, clusters);
    };

    // End-to-end cells: median-of-N wall time of a full schedule()
    // call; one untimed warm-up run per cell.
    for (const auto &cell : e2e_cells) {
        std::unique_ptr<MachineModel> machine;
        std::unique_ptr<SchedulingAlgorithm> algorithm;
        const DependenceGraph graph =
            prepare(cell, &machine, &algorithm);
        (void)algorithm->run(graph); // warm-up, untimed
        std::vector<double> seconds;
        int makespan = 0;
        for (int rep = 0; rep < repeats; ++rep) {
            const auto begin = std::chrono::steady_clock::now();
            const ScheduleResult result = algorithm->run(graph);
            const auto end = std::chrono::steady_clock::now();
            seconds.push_back(
                std::chrono::duration<double>(end - begin).count());
            makespan = result.schedule.makespan();
        }
        BenchCell out;
        out.workload = cell.workload;
        out.machine = cell.machine;
        out.algorithm = cell.algorithm;
        out.medianSeconds = median(seconds);
        out.minSeconds =
            *std::min_element(seconds.begin(), seconds.end());
        out.reps = repeats;
        out.instructions = graph.numInstructions();
        out.makespan = makespan;
        e2e_report.cells.push_back(out);
        std::cerr << "perf: " << out.key() << " median "
                  << formatDouble(out.medianSeconds * 1e3, 2)
                  << " ms over " << repeats << " reps\n";
    }

    // Pass-kernel cells: per-pass wall times from the pipeline trace,
    // median-of-N per trace position.
    for (const auto &cell : kernel_cells) {
        std::unique_ptr<MachineModel> machine;
        std::unique_ptr<SchedulingAlgorithm> algorithm;
        const DependenceGraph graph =
            prepare(cell, &machine, &algorithm);
        std::vector<std::string> names;
        std::vector<std::vector<double>> samples;
        for (int rep = 0; rep < repeats; ++rep) {
            const ScheduleResult result = algorithm->run(graph);
            if (names.empty()) {
                names = kernelNames(result.trace);
                samples.resize(names.size());
            }
            for (size_t k = 0;
                 k < result.trace.size() && k < samples.size(); ++k)
                samples[k].push_back(result.trace[k].seconds);
        }
        for (size_t k = 0; k < names.size(); ++k) {
            BenchCell out;
            out.workload = cell.workload;
            out.machine = cell.machine;
            out.kernel = names[k];
            out.medianSeconds = median(samples[k]);
            out.minSeconds = *std::min_element(samples[k].begin(),
                                               samples[k].end());
            out.reps = repeats;
            kernels_report.cells.push_back(out);
        }
        std::cerr << "perf: " << cell.workload << "/" << cell.machine
                  << " pass kernels measured (" << names.size()
                  << " passes x " << repeats << " reps)\n";
    }

    // Online cells: median-of-N wall time of one full runOnline()
    // commit loop over a pre-generated arrival stream (generation is
    // untimed -- the stream is the fixture, the loop is the engine).
    for (const auto &cell : online_cells) {
        std::string error;
        const auto machine = parseMachineSpec(cell.machine, &error);
        if (machine == nullptr)
            usage(argv0, error);
        const auto stream = parseStreamSpec(cell.workload, &error);
        if (!stream.has_value())
            usage(argv0, error);
        const auto policy = parseOnlinePolicy(cell.algorithm, &error);
        if (!policy.has_value())
            usage(argv0, error);
        const auto arrivals = generateArrivals(*stream);
        if (!arrivals.ok())
            usage(argv0, arrivals.status().toString());

        OnlineMetrics metrics;
        std::vector<double> seconds;
        for (int rep = 0; rep <= repeats; ++rep) {
            const auto begin = std::chrono::steady_clock::now();
            const auto run = runOnline(*machine, *policy, *arrivals);
            const auto end = std::chrono::steady_clock::now();
            if (!run.ok()) {
                std::cerr << argv0 << ": online cell " << cell.workload
                          << "/" << cell.machine << "/"
                          << cell.algorithm << ": "
                          << run.status().toString() << "\n";
                return 1;
            }
            if (rep == 0)
                continue;  // warm-up, untimed
            seconds.push_back(
                std::chrono::duration<double>(end - begin).count());
            metrics = computeOnlineMetrics(run->commits);
        }
        BenchCell out;
        out.workload = cell.workload;
        out.machine = cell.machine;
        out.algorithm = cell.algorithm;
        out.medianSeconds = median(seconds);
        out.minSeconds =
            *std::min_element(seconds.begin(), seconds.end());
        out.reps = repeats;
        out.instructions = metrics.instructions;
        out.makespan = metrics.makespan;
        online_report.cells.push_back(out);
        std::cerr << "perf: " << out.key() << " median "
                  << formatDouble(out.medianSeconds * 1e3, 2)
                  << " ms over " << repeats << " reps ("
                  << metrics.regions << " regions)\n";
    }

    // Mesh cells: the degraded-machine hot paths on a 32x32 mesh.
    // Per machine (fault-free and 10% degraded), two kernels:
    // "construct" is one tryParseMachineSpec call (fault-map
    // materialisation plus the per-destination detour-table BFS on
    // 1024 tiles), "schedule" is one tryRunAndCheck call (the
    // fault-aware router inside scheduling and the dead-resource
    // checker rules).  The cell set is fixed so quick and full runs
    // join against the same baseline keys.
    {
        const std::string mesh_workload = "mxm";
        const std::vector<std::string> mesh_machines = {
            "raw32x32", "raw32x32/faults=seed:1,tiles:10%,links:3%"};
        for (const auto &machine_spec : mesh_machines) {
            std::vector<double> construct_seconds;
            std::unique_ptr<MachineModel> machine;
            for (int rep = 0; rep <= repeats; ++rep) {
                const auto begin = std::chrono::steady_clock::now();
                auto built = tryParseMachineSpec(machine_spec);
                const auto end = std::chrono::steady_clock::now();
                if (!built.ok()) {
                    std::cerr << argv0 << ": mesh cell " << machine_spec
                              << ": " << built.status().toString()
                              << "\n";
                    return 1;
                }
                machine = std::move(*built);
                if (rep == 0)
                    continue;  // warm-up, untimed
                construct_seconds.push_back(
                    std::chrono::duration<double>(end - begin)
                        .count());
            }
            BenchCell construct;
            construct.workload = "-";
            construct.machine = machine_spec;
            construct.kernel = "construct";
            construct.medianSeconds = median(construct_seconds);
            construct.minSeconds =
                *std::min_element(construct_seconds.begin(),
                                  construct_seconds.end());
            construct.reps = repeats;
            mesh_report.cells.push_back(construct);

            std::string error;
            const auto spec = parseAlgorithmSpec("uas", &error);
            if (!spec.has_value())
                usage(argv0, error);
            const auto algorithm = makeAlgorithm(*spec, *machine);
            const WorkloadSpec *workload =
                tryFindWorkload(mesh_workload);
            if (workload == nullptr)
                usage(argv0,
                      "unknown workload '" + mesh_workload + "'");
            // Fixed bank count: mxm's size scales with banks, and the
            // cell measures routing on 1024 tiles, not a 65k-instr
            // graph.  Preplacement still spreads over the whole mesh.
            DependenceGraph graph =
                workload->build(16, machine->numClusters());
            remapPreplacedForMachine(graph, *machine);
            std::vector<double> schedule_seconds;
            int makespan = 0;
            for (int rep = 0; rep <= repeats; ++rep) {
                const auto begin = std::chrono::steady_clock::now();
                const auto run =
                    tryRunAndCheck(*algorithm, graph, *machine);
                const auto end = std::chrono::steady_clock::now();
                if (!run.ok()) {
                    std::cerr << argv0 << ": mesh cell "
                              << mesh_workload << "/" << machine_spec
                              << ": " << run.status().toString()
                              << "\n";
                    return 1;
                }
                makespan = run->makespan;
                if (rep == 0)
                    continue;  // warm-up, untimed
                schedule_seconds.push_back(
                    std::chrono::duration<double>(end - begin)
                        .count());
            }
            BenchCell schedule;
            schedule.workload = mesh_workload;
            schedule.machine = machine_spec;
            schedule.kernel = "schedule";
            schedule.algorithm = "uas";
            schedule.medianSeconds = median(schedule_seconds);
            schedule.minSeconds =
                *std::min_element(schedule_seconds.begin(),
                                  schedule_seconds.end());
            schedule.reps = repeats;
            schedule.instructions = graph.numInstructions();
            schedule.makespan = makespan;
            mesh_report.cells.push_back(schedule);
            std::cerr << "perf: mesh " << machine_spec << " construct "
                      << formatDouble(construct.medianSeconds * 1e3, 2)
                      << " ms, schedule "
                      << formatDouble(schedule.medianSeconds * 1e3, 2)
                      << " ms over " << repeats << " reps\n";
        }
    }

    // Dist cells: the distributed execution path end to end.  One
    // fixed small grid is timed through runGrid() twice -- under
    // --isolate (the in-process containment baseline) and over a
    // localhost fleet of two forked workerd daemons -- so the gate
    // tracks the dispatch/lease/heartbeat overhead the RemoteWorkerPool
    // adds on top of the same forked-worker execution.
    {
        // One fixed grid for quick and full runs alike, so the gate's
        // key join always finds both cells in the baseline.
        GridSpec dist_grid;
        dist_grid.workloads = {"fir", "vvmul", "jacobi"};
        dist_grid.machines = {"vliw4"};
        std::string error;
        const auto convergent =
            parseAlgorithmSpec("convergent", &error);
        if (!convergent.has_value())
            usage(argv0, error);
        dist_grid.algorithms = {*convergent};
        dist_grid.jobs = 4;
        dist_grid.computeSpeedup = true;

        const auto workerd_a = spawnPerfWorkerd(2);
        const auto workerd_b = spawnPerfWorkerd(2);
        if (!workerd_a.has_value() || !workerd_b.has_value()) {
            if (workerd_a.has_value())
                reapWorkerd(*workerd_a);
            std::cerr << argv0
                      << ": dist cells: cannot fork workerd\n";
            return 1;
        }

        std::string workload_label;
        for (const auto &name : dist_grid.workloads)
            workload_label +=
                (workload_label.empty() ? "" : "+") + name;

        // (mode label, grid mutation) pairs; the label lands in the
        // cell's kernel field so the two modes join as distinct keys.
        bool dist_ok = true;
        for (const std::string mode : {"isolate", "dist-2x2"}) {
            GridSpec grid = dist_grid;
            if (mode == "isolate") {
                grid.isolate = true;
            } else {
                grid.hosts = {
                    "127.0.0.1:" + std::to_string(workerd_a->port),
                    "127.0.0.1:" + std::to_string(workerd_b->port)};
            }
            std::vector<double> seconds;
            for (int rep = 0; rep <= repeats; ++rep) {
                const GridReport report = runGrid(grid);
                if (!report.allOk()) {
                    std::cerr << argv0 << ": dist cell " << mode
                              << ": grid run failed\n";
                    dist_ok = false;
                    break;
                }
                if (rep == 0)
                    continue;  // warm-up, untimed
                seconds.push_back(report.wallSeconds);
            }
            if (!dist_ok)
                break;
            BenchCell out;
            out.workload = workload_label;
            out.machine = "vliw4";
            out.kernel = mode;
            out.medianSeconds = median(seconds);
            out.minSeconds =
                *std::min_element(seconds.begin(), seconds.end());
            out.reps = repeats;
            dist_report.cells.push_back(out);
            std::cerr << "perf: " << out.key() << " median "
                      << formatDouble(out.medianSeconds * 1e3, 2)
                      << " ms over " << repeats << " reps\n";
        }
        reapWorkerd(*workerd_a);
        reapWorkerd(*workerd_b);
        if (!dist_ok)
            return 1;
    }

    // Optionally attach pre-rewrite medians so the trajectory's
    // starting point travels with the report.
    if (!annotate_file.empty()) {
        const auto loaded = readWholeFile(annotate_file);
        if (!loaded.has_value()) {
            std::cerr << argv0 << ": cannot read " << annotate_file
                      << "\n";
            return 1;
        }
        std::string error;
        const auto pre = parseBenchReport(*loaded, &error);
        if (!pre.has_value()) {
            std::cerr << argv0 << ": " << annotate_file << ": "
                      << error << "\n";
            return 1;
        }
        std::map<std::string, double> pre_by_key;
        for (const auto &cell : pre->cells)
            pre_by_key[cell.key()] = cell.medianSeconds;
        for (auto &cell : e2e_report.cells) {
            const auto it = pre_by_key.find(cell.key());
            if (it != pre_by_key.end())
                cell.preRewriteSeconds = it->second;
        }
    }

    // mkdir -p for the output directory (existing components are ok).
    std::string dir_prefix;
    for (const auto &component : split(out_dir, '/')) {
        dir_prefix += component + "/";
        if (!component.empty() && component != ".")
            ::mkdir(dir_prefix.c_str(), 0777);
    }
    auto writeReport = [&](const std::string &path,
                           const BenchReport &report) -> bool {
        const Status written =
            writeFileAtomic(path, benchReportToJson(report));
        if (!written.ok()) {
            std::cerr << argv0 << ": " << written.toString() << "\n";
            return false;
        }
        std::cerr << "perf: wrote " << path << "\n";
        return true;
    };
    if (!writeReport(out_dir + "/BENCH_pass_kernels.json",
                     kernels_report) ||
        !writeReport(out_dir + "/BENCH_end_to_end.json", e2e_report) ||
        !writeReport(out_dir + "/BENCH_online.json", online_report) ||
        !writeReport(out_dir + "/BENCH_mesh.json", mesh_report) ||
        !writeReport(out_dir + "/BENCH_dist.json", dist_report))
        return 1;

    if (!check)
        return 0;

    // The regression gate: join the end-to-end cells against the
    // committed baseline and fail on slowdown beyond the threshold.
    // The gate is the end-to-end medians only: per-pass kernel times
    // cover ~a third of a schedule() call, so machine-load noise
    // swings them far more than the cells the gate protects.  The
    // per-kernel delta table is printed as the diagnostic when the
    // gate fails (it localises the regression to a pass).
    BenchCompareOptions compare;
    compare.slowdownThreshold = threshold / 100.0;
    auto load = [&](const char *name) -> std::optional<BenchReport> {
        const std::string base_path =
            baseline_dir + "/" + std::string(name);
        const auto loaded = readWholeFile(base_path);
        if (!loaded.has_value()) {
            std::cerr << argv0 << ": perf gate: no baseline "
                      << base_path << "\n";
            return std::nullopt;
        }
        std::string error;
        auto baseline = parseBenchReport(*loaded, &error);
        if (!baseline.has_value())
            std::cerr << argv0 << ": perf gate: " << base_path << ": "
                      << error << "\n";
        return baseline;
    };
    const auto e2e_baseline = load("BENCH_end_to_end.json");
    const auto online_baseline = load("BENCH_online.json");
    const auto mesh_baseline = load("BENCH_mesh.json");
    const auto dist_baseline = load("BENCH_dist.json");
    if (!e2e_baseline.has_value() || !online_baseline.has_value() ||
        !mesh_baseline.has_value() || !dist_baseline.has_value()) {
        std::cerr << argv0 << ": perf gate FAILED\n";
        return 1;
    }
    std::cout << "perf gate: end-to-end vs " << baseline_dir
              << "/BENCH_end_to_end.json (threshold "
              << formatDouble(threshold, 0) << "%)\n";
    bool ok = compareBenchReports(*e2e_baseline, e2e_report, compare,
                                  std::cout);
    std::cout << "\n";
    std::cout << "perf gate: online vs " << baseline_dir
              << "/BENCH_online.json (threshold "
              << formatDouble(threshold, 0) << "%)\n";
    ok = compareBenchReports(*online_baseline, online_report, compare,
                             std::cout) &&
         ok;
    std::cout << "\n";
    std::cout << "perf gate: mesh vs " << baseline_dir
              << "/BENCH_mesh.json (threshold "
              << formatDouble(threshold, 0) << "%)\n";
    ok = compareBenchReports(*mesh_baseline, mesh_report, compare,
                             std::cout) &&
         ok;
    std::cout << "\n";
    std::cout << "perf gate: dist vs " << baseline_dir
              << "/BENCH_dist.json (threshold "
              << formatDouble(threshold, 0) << "%)\n";
    ok = compareBenchReports(*dist_baseline, dist_report, compare,
                             std::cout) &&
         ok;
    std::cout << "\n";
    if (!ok) {
        const auto kernels_baseline = load("BENCH_pass_kernels.json");
        if (kernels_baseline.has_value()) {
            std::cout << "perf gate: per-kernel deltas (diagnostic)\n";
            (void)compareBenchReports(*kernels_baseline,
                                      kernels_report, compare,
                                      std::cout);
            std::cout << "\n";
        }
        std::cerr << argv0 << ": perf gate FAILED\n";
        return 1;
    }
    std::cout << "perf gate ok\n";
    return 0;
}

// ---- list ----------------------------------------------------------

int
runList()
{
    std::cout << "workloads:\n";
    for (const auto &spec : allWorkloads())
        std::cout << "  " << spec.name << "  -- " << spec.description
                  << "\n";
    std::cout << "perf workloads (csched_bench perf):\n";
    for (const auto &spec : perfWorkloads())
        std::cout << "  " << spec.name << "  -- " << spec.description
                  << "\n";
    std::cout << "machines: vliwN, rawN, rawRxC, single\n";
    std::cout << "algorithms:";
    for (const auto &name : knownAlgorithmNames())
        std::cout << " " << name;
    std::cout << "\nonline policies (stream workloads, see "
                 "online/policy.hh):";
    for (const auto &name : knownOnlinePolicyNames())
        std::cout << " " << name;
    std::cout << "\npasses:";
    for (const auto &name : knownPassNames())
        std::cout << " " << name;
    std::cout << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (!args.empty() && args[0] == "suite")
        return runSuite(argv[0], {args.begin() + 1, args.end()});
    if (!args.empty() && args[0] == "perf")
        return runPerf(argv[0], {args.begin() + 1, args.end()});
    if (!args.empty() && args[0] == "list")
        return runList();
    if (!args.empty() && args[0] == "--version")
        return printToolVersion("csched_bench");
    if (!args.empty() && args[0] == "help")
        usage(argv[0]);
    // Compatibility shim: bare grid flags keep meaning `suite` for
    // one release.
    if (args.empty() || args[0].rfind("--", 0) == 0)
        return runSuite(argv[0], args);
    usage(argv[0], "unknown subcommand '" + args[0] + "'");
}
