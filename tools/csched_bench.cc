/**
 * @file
 * Batch experiment driver: run a (workload x machine x algorithm)
 * grid on a thread pool and report a table and/or structured JSON.
 * This subsumes the hand-rolled serial loops of the per-figure bench
 * binaries; e.g. Figure 8 is
 *
 *   csched_bench --suite vliw --machines vliw4 \
 *                --algorithms pcc,uas,convergent
 *
 * and Table 2 is
 *
 *   csched_bench --suite raw --machines raw2,raw4,raw8,raw16 \
 *                --algorithms rawcc,convergent
 *
 *   csched_bench [options]
 *     --workloads A,B,...   explicit workload list
 *     --suite raw|vliw|all  named workload suite (default: all)
 *     --machines S,S,...    machine specs (default vliw4)
 *     --algorithms A,A,...  algorithm specs (default convergent);
 *                           "convergent:PASS,PASS" selects a custom
 *                           pass sequence
 *     --jobs N              worker threads; 0 = hardware concurrency
 *                           (default 0).  Results are bit-identical
 *                           for every N.
 *     --json FILE           write the structured report ("-" = stdout)
 *     --no-timings          omit wall-clock fields from the JSON so
 *                           reports are byte-identical across runs
 *     --no-assignments      omit per-instruction assignment vectors
 *     --no-speedup          skip the one-cluster normalisation runs
 *     --quiet               suppress the human-readable table
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "runner/grid_runner.hh"
#include "runner/json_report.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

using namespace csched;

namespace {

[[noreturn]] void
usage(const char *argv0, const std::string &why = "")
{
    if (!why.empty())
        std::cerr << argv0 << ": " << why << "\n";
    std::cerr << "usage: " << argv0
              << " [--workloads A,B|--suite raw|vliw|all]"
              << " [--machines S,S]\n"
              << "  [--algorithms A,A] [--jobs N] [--json FILE]"
              << " [--no-timings]\n"
              << "  [--no-assignments] [--no-speedup] [--quiet]\n";
    std::exit(2);
}

std::vector<std::string>
suiteWorkloads(const std::string &suite)
{
    if (suite == "raw")
        return rawSuiteNames();
    if (suite == "vliw")
        return vliwSuiteNames();
    if (suite == "all") {
        std::vector<std::string> names;
        for (const auto &spec : allWorkloads())
            names.push_back(spec.name);
        return names;
    }
    return {};
}

} // namespace

int
main(int argc, char **argv)
{
    GridSpec grid;
    grid.machines = {"vliw4"};
    grid.jobs = 0;
    std::string suite = "all";
    std::string workloads_arg;
    std::string algorithms_arg = "convergent";
    std::string json_file;
    ReportOptions report_options;
    bool quiet = false;

    for (int k = 1; k < argc; ++k) {
        const std::string arg = argv[k];
        auto next = [&]() -> std::string {
            if (k + 1 >= argc)
                usage(argv[0], arg + " needs a value");
            return argv[++k];
        };
        if (arg == "--workloads") {
            workloads_arg = next();
        } else if (arg == "--suite") {
            suite = next();
        } else if (arg == "--machines" || arg == "--machine") {
            grid.machines = split(next(), ',');
        } else if (arg == "--algorithms" || arg == "--algorithm") {
            algorithms_arg = next();
        } else if (arg == "--jobs") {
            const std::string text = next();
            try {
                grid.jobs = std::stoi(text);
            } catch (...) {
                usage(argv[0], "--jobs expects an integer, got '" +
                                   text + "'");
            }
            if (grid.jobs < 0)
                usage(argv[0], "--jobs must be >= 0");
        } else if (arg == "--json") {
            json_file = next();
        } else if (arg == "--no-timings") {
            report_options.timings = false;
        } else if (arg == "--no-assignments") {
            report_options.assignments = false;
        } else if (arg == "--no-speedup") {
            grid.computeSpeedup = false;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            usage(argv[0], "unknown option '" + arg + "'");
        }
    }

    grid.workloads = workloads_arg.empty()
                         ? suiteWorkloads(suite)
                         : split(workloads_arg, ',');
    if (grid.workloads.empty())
        usage(argv[0], "unknown suite '" + suite +
                           "' (expected raw|vliw|all)");

    // Algorithm specs may contain colons+commas ("convergent:A,B"),
    // so split on commas only outside a sequence: a part that names a
    // known algorithm starts a new spec, otherwise it continues the
    // previous spec's pass list.
    for (const auto &part : split(algorithms_arg, ',')) {
        std::string error;
        const auto parsed = parseAlgorithmSpec(part, &error);
        if (parsed.has_value()) {
            grid.algorithms.push_back(*parsed);
        } else if (!grid.algorithms.empty() &&
                   !grid.algorithms.back().sequence.empty()) {
            grid.algorithms.back().sequence += "," + trim(part);
        } else {
            usage(argv[0], error);
        }
    }
    // Re-validate the stitched-together sequences.
    for (auto &spec : grid.algorithms) {
        std::string error;
        const auto parsed = parseAlgorithmSpec(spec.text(), &error);
        if (!parsed.has_value())
            usage(argv[0], error);
        spec = *parsed;
    }

    std::string error;
    if (!validateGrid(grid, &error))
        usage(argv[0], error);

    const GridReport report = runGrid(grid);

    if (!quiet) {
        TablePrinter table({"workload", "machine", "algorithm",
                            "instrs", "makespan", "speedup", "ms"});
        for (const auto &job : report.results)
            table.addRow(
                {job.workload, job.machine, job.algorithm,
                 std::to_string(job.instructions),
                 std::to_string(job.makespan),
                 grid.computeSpeedup ? formatDouble(job.speedup, 2)
                                     : "-",
                 formatDouble(job.seconds * 1e3, 2)});
        table.print(std::cout);
        std::cout << "\n" << report.results.size() << " jobs on "
                  << report.threads << " thread"
                  << (report.threads == 1 ? "" : "s") << " in "
                  << formatDouble(report.wallSeconds, 2) << " s\n";
    }

    if (!json_file.empty()) {
        if (json_file == "-") {
            writeGridReport(std::cout, report, report_options);
        } else {
            std::ofstream out(json_file);
            if (!out) {
                std::cerr << argv[0] << ": cannot write '" << json_file
                          << "'\n";
                return 1;
            }
            writeGridReport(out, report, report_options);
            if (!quiet)
                std::cout << "wrote " << json_file << "\n";
        }
    }
    return 0;
}
