/**
 * @file
 * Batch experiment driver: run a (workload x machine x algorithm)
 * grid on a thread pool and report a table and/or structured JSON.
 * This subsumes the hand-rolled serial loops of the per-figure bench
 * binaries; e.g. Figure 8 is
 *
 *   csched_bench --suite vliw --machines vliw4 \
 *                --algorithms pcc,uas,convergent
 *
 * and Table 2 is
 *
 *   csched_bench --suite raw --machines raw2,raw4,raw8,raw16 \
 *                --algorithms rawcc,convergent
 *
 *   csched_bench [options]
 *     --workloads A,B,...   explicit workload list
 *     --suite raw|vliw|all  named workload suite (default: all)
 *     --machines S,S,...    machine specs (default vliw4)
 *     --algorithms A,A,...  algorithm specs (default convergent);
 *                           "convergent:PASS,PASS" selects a custom
 *                           pass sequence
 *     --jobs N              worker threads; 0 = hardware concurrency
 *                           (default 0).  Results are bit-identical
 *                           for every N.
 *     --json FILE           write the structured report ("-" = stdout)
 *     --no-timings          omit wall-clock fields from the JSON so
 *                           reports are byte-identical across runs
 *     --no-assignments      omit per-instruction assignment vectors
 *     --no-speedup          skip the one-cluster normalisation runs
 *     --deadline-ms N       per-attempt deadline per job; 0 = none
 *     --retries N           retry failed/timed-out jobs up to N times
 *     --isolate             run each job in a forked worker process:
 *                           a segfault, hang, or memory runaway is
 *                           contained as that cell's outcome (with
 *                           the fatal signal/exit status recorded)
 *                           instead of killing the run.  Reported
 *                           numbers are byte-identical either way.
 *     --mem-limit-mb N      RLIMIT_AS per isolated worker; 0 = none
 *     --journal FILE        append every terminal job outcome to FILE
 *                           as it completes (crash-safe JSONL)
 *     --resume              skip jobs already recorded in --journal
 *                           and replay their outcomes; the final
 *                           report is byte-identical to an
 *                           uninterrupted run
 *     --keep-going          exit 0 even when jobs failed (the report
 *                           still marks every failed cell)
 *     --quiet               suppress the human-readable table
 *
 * A failing job never aborts the grid: its cell is marked in the table
 * and the JSON, healthy cells are salvaged, a summary goes to stderr,
 * and the exit status is 1 unless --keep-going.  SIGINT/SIGTERM drain
 * in-flight jobs, journal them, write a partial report marked
 * "interrupted", and exit 128+signum; a --resume re-run completes the
 * grid.  File outputs are atomic (tmp + fsync + rename).  (There is
 * also a hidden --inject RULES option, the deterministic
 * fault-injection harness used by the robustness tests; see
 * fault_injection.hh for the rule grammar.)
 */

#include <iostream>
#include <string>
#include <vector>

#include "runner/failure_summary.hh"
#include "runner/grid_runner.hh"
#include "runner/json_report.hh"
#include "runner/shutdown.hh"
#include "support/atomic_file.hh"
#include "support/fault_injection.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

using namespace csched;

namespace {

[[noreturn]] void
usage(const char *argv0, const std::string &why = "")
{
    if (!why.empty())
        std::cerr << argv0 << ": " << why << "\n";
    std::cerr << "usage: " << argv0
              << " [--workloads A,B|--suite raw|vliw|all]"
              << " [--machines S,S]\n"
              << "  [--algorithms A,A] [--jobs N] [--json FILE]"
              << " [--no-timings]\n"
              << "  [--no-assignments] [--no-speedup] [--deadline-ms N]"
              << " [--retries N]\n"
              << "  [--isolate] [--mem-limit-mb N] [--journal FILE]"
              << " [--resume]\n"
              << "  [--keep-going] [--quiet]\n";
    std::exit(2);
}

std::vector<std::string>
suiteWorkloads(const std::string &suite)
{
    if (suite == "raw")
        return rawSuiteNames();
    if (suite == "vliw")
        return vliwSuiteNames();
    if (suite == "all") {
        std::vector<std::string> names;
        for (const auto &spec : allWorkloads())
            names.push_back(spec.name);
        return names;
    }
    return {};
}

} // namespace

int
main(int argc, char **argv)
{
    GridSpec grid;
    grid.machines = {"vliw4"};
    grid.jobs = 0;
    std::string suite = "all";
    std::string workloads_arg;
    std::string algorithms_arg = "convergent";
    std::string json_file;
    ReportOptions report_options;
    bool quiet = false;
    bool keep_going = false;
    FaultPlan fault_plan;

    for (int k = 1; k < argc; ++k) {
        const std::string arg = argv[k];
        auto next = [&]() -> std::string {
            if (k + 1 >= argc)
                usage(argv[0], arg + " needs a value");
            return argv[++k];
        };
        auto nextInt = [&](const char *floor_why) -> int {
            const std::string text = next();
            int parsed = 0;
            try {
                parsed = std::stoi(text);
            } catch (...) {
                usage(argv[0],
                      arg + " expects an integer, got '" + text + "'");
            }
            if (parsed < 0)
                usage(argv[0], arg + floor_why);
            return parsed;
        };
        if (arg == "--workloads") {
            workloads_arg = next();
        } else if (arg == "--suite") {
            suite = next();
        } else if (arg == "--machines" || arg == "--machine") {
            grid.machines = split(next(), ',');
        } else if (arg == "--algorithms" || arg == "--algorithm") {
            algorithms_arg = next();
        } else if (arg == "--jobs") {
            grid.jobs = nextInt(" must be >= 0");
        } else if (arg == "--deadline-ms") {
            grid.deadlineMs = nextInt(" must be >= 0 (0 = no deadline)");
        } else if (arg == "--retries") {
            grid.retries = nextInt(" must be >= 0");
        } else if (arg == "--isolate") {
            grid.isolate = true;
        } else if (arg == "--mem-limit-mb") {
            grid.memLimitMb =
                nextInt(" must be >= 0 (0 = unlimited)");
        } else if (arg == "--journal") {
            grid.journalPath = next();
        } else if (arg == "--resume") {
            grid.resume = true;
        } else if (arg == "--keep-going") {
            keep_going = true;
        } else if (arg == "--inject") {
            // Hidden: deterministic fault injection for the
            // robustness tests (see fault_injection.hh).
            std::string why;
            const auto parsed_plan = FaultPlan::parse(next(), &why);
            if (!parsed_plan.has_value())
                usage(argv[0], "--inject: " + why);
            fault_plan = *parsed_plan;
        } else if (arg == "--json") {
            json_file = next();
        } else if (arg == "--no-timings") {
            report_options.timings = false;
        } else if (arg == "--no-assignments") {
            report_options.assignments = false;
        } else if (arg == "--no-speedup") {
            grid.computeSpeedup = false;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            usage(argv[0], "unknown option '" + arg + "'");
        }
    }

    grid.workloads = workloads_arg.empty()
                         ? suiteWorkloads(suite)
                         : split(workloads_arg, ',');
    if (grid.workloads.empty())
        usage(argv[0], "unknown suite '" + suite +
                           "' (expected raw|vliw|all)");

    // Algorithm specs may contain colons+commas ("convergent:A,B"),
    // so split on commas only outside a sequence: a part that names a
    // known algorithm starts a new spec, otherwise it continues the
    // previous spec's pass list.
    for (const auto &part : split(algorithms_arg, ',')) {
        std::string error;
        const auto parsed = parseAlgorithmSpec(part, &error);
        if (parsed.has_value()) {
            grid.algorithms.push_back(*parsed);
        } else if (!grid.algorithms.empty() &&
                   !grid.algorithms.back().sequence.empty()) {
            grid.algorithms.back().sequence += "," + trim(part);
        } else {
            usage(argv[0], error);
        }
    }
    // Re-validate the stitched-together sequences.
    for (auto &spec : grid.algorithms) {
        std::string error;
        const auto parsed = parseAlgorithmSpec(spec.text(), &error);
        if (!parsed.has_value())
            usage(argv[0], error);
        spec = *parsed;
    }

    if (!fault_plan.empty())
        grid.faults = &fault_plan;
    if (grid.resume && grid.journalPath.empty())
        usage(argv[0], "--resume requires --journal");

    std::string error;
    if (!validateGrid(grid, &error))
        usage(argv[0], error);

    installGridSignalHandlers();
    const GridReport report = runGrid(grid);

    if (!quiet) {
        TablePrinter table({"workload", "machine", "algorithm",
                            "instrs", "makespan", "speedup", "ms"});
        for (const auto &job : report.results) {
            if (!job.ok()) {
                const std::string mark = jobOutcomeName(job.outcome);
                table.addRow({job.workload, job.machine, job.algorithm,
                              mark, mark, mark, mark});
                continue;
            }
            table.addRow(
                {job.workload, job.machine, job.algorithm,
                 std::to_string(job.instructions),
                 std::to_string(job.makespan),
                 grid.computeSpeedup ? formatDouble(job.speedup, 2)
                                     : "-",
                 formatDouble(job.seconds * 1e3, 2)});
        }
        table.print(std::cout);
        std::cout << "\n" << report.results.size() << " jobs on "
                  << report.threads << " thread"
                  << (report.threads == 1 ? "" : "s") << " in "
                  << formatDouble(report.wallSeconds, 2) << " s\n";
    }

    if (!json_file.empty()) {
        if (json_file == "-") {
            writeGridReport(std::cout, report, report_options);
        } else {
            // Driver-level fault scope so --inject can target the
            // report write itself (the jobs ran in their own scopes).
            FaultScope report_faults(grid.faults, "report");
            ScopedFaultScope report_fault_guard(&report_faults);
            const Status written = writeFileAtomic(
                json_file, gridReportToJson(report, report_options));
            if (!written.ok()) {
                std::cerr << argv[0] << ": " << written.toString()
                          << "\n";
                return 1;
            }
            if (!quiet)
                std::cout << "wrote " << json_file << "\n";
        }
    }

    printFailureSummary(std::cerr, report);
    return gridExitCode(report, keep_going);
}
