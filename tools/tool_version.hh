/**
 * @file
 * Shared `--version` implementation for every csched binary: one JSON
 * object on stdout with the build's provenance -- git describe and
 * commit, build type, and compiler flags -- injected by
 * tools/CMakeLists.txt as compile definitions.  One schema for all
 * four tools so drivers (and the CI smoke legs) can assert on it
 * uniformly; "unknown" fallbacks keep builds outside a git checkout
 * working.
 */

#ifndef CSCHED_TOOLS_TOOL_VERSION_HH
#define CSCHED_TOOLS_TOOL_VERSION_HH

#include <iostream>
#include <sstream>

#include "support/json.hh"

namespace csched {

/** Print the one-object version report for @p tool and return 0. */
inline int
printToolVersion(const char *tool)
{
#ifndef CSCHED_GIT_DESCRIBE
#define CSCHED_GIT_DESCRIBE "unknown"
#endif
#ifndef CSCHED_GIT_COMMIT
#define CSCHED_GIT_COMMIT "unknown"
#endif
#ifndef CSCHED_BUILD_TYPE
#define CSCHED_BUILD_TYPE "unknown"
#endif
#ifndef CSCHED_CXX_FLAGS
#define CSCHED_CXX_FLAGS ""
#endif
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        w.key("schema").value("csched-tool-version-v1");
        w.key("tool").value(tool);
        w.key("gitDescribe").value(CSCHED_GIT_DESCRIBE);
        w.key("gitCommit").value(CSCHED_GIT_COMMIT);
        w.key("buildType").value(CSCHED_BUILD_TYPE);
        w.key("cxxFlags").value(CSCHED_CXX_FLAGS);
        w.key("compiler").value(__VERSION__);
        w.endObject();
    }
    std::cout << compactJson(out.str()) << "\n";
    return 0;
}

} // namespace csched

#endif // CSCHED_TOOLS_TOOL_VERSION_HH
