/**
 * @file
 * Load generator for csched_serve: drives the daemon with many
 * concurrent synchronous clients and *proves* the exactly-one-reply
 * contract -- every request it writes is accounted for as exactly one
 * structured response (a result, `overloaded`, a deadline expiry, or
 * `interrupted` during a drain), and any stray or missing reply is a
 * counted defect that fails the run.
 *
 *   csched_load --socket PATH [options]
 *   csched_load --endpoint HOST:PORT [options]
 *     --socket PATH         drive a csched_serve daemon over its
 *                           UNIX-domain socket (serve protocol)
 *     --endpoint HOST:PORT  drive a csched_workerd daemon over TCP
 *                           (csched-dist-v1 protocol: hello/welcome
 *                           handshake, then one job frame per request
 *                           and exactly one result frame back)
 *     --clients N           concurrent client connections (default 8)
 *     --requests N          requests per client (default 10)
 *     --deadline-ms N       per-request deadline sent to the server
 *                           (default 0 = server default)
 *     --reply-timeout-ms N  client-side budget to wait for one reply
 *                           (default 30000)
 *     --conn-retries N      reconnect budget for connections closed
 *                           before their first reply -- the
 *                           serve.accept fault closes fresh
 *                           connections unread, so resending there
 *                           cannot duplicate work (default 3)
 *     --workloads CSV       workload mix (default "vvmul,fir")
 *     --machines CSV        machine mix (default "vliw2")
 *     --algorithms CSV      algorithm mix (default "uas,convergent")
 *     --speedup             request the one-cluster normalisation too
 *     --json FILE           write the csched-load-report-v1 ("-" =
 *                           stdout)
 *     --version             print build provenance JSON and exit
 *
 * Each client is deliberately synchronous (one request in flight per
 * connection): after a drain begins, the first `interrupted` reply
 * tells the client to stop sending and close, which is the handshake
 * the daemon's graceful drain relies on.  The (workload, machine,
 * algorithm) of request r from client c is a pure function of (c, r),
 * so the request mix is reproducible.
 *
 * Exit code: 0 when zero replies were lost and zero duplicated; 1
 * otherwise (or when the report cannot be written).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "dist/protocol.hh"
#include "serve/protocol.hh"
#include "support/atomic_file.hh"
#include "support/json.hh"
#include "support/socket.hh"
#include "support/stats.hh"
#include "support/str.hh"
#include "support/subprocess.hh"
#include "tool_version.hh"

namespace {

using namespace csched;
using Clock = std::chrono::steady_clock;

struct LoadConfig
{
    std::string socketPath;
    /** TCP "host:port" of a csched_workerd; selects the dist mode. */
    std::string endpoint;
    int clients = 8;
    int requests = 10;
    int deadlineMs = 0;
    int replyTimeoutMs = 30000;
    int connectTimeoutMs = 5000;
    int connRetries = 3;
    std::vector<std::string> workloads = {"vvmul", "fir"};
    std::vector<std::string> machines = {"vliw2"};
    std::vector<std::string> algorithms = {"uas", "convergent"};
    bool speedup = false;
    std::string jsonFile;

    bool dist() const { return !endpoint.empty(); }
    uint32_t maxFrameBytes() const
    {
        return dist() ? kDistMaxFrameBytes : kServeMaxFrameBytes;
    }
};

/** Per-client outcome ledger, merged after the join. */
struct Tally
{
    uint64_t sent = 0;     ///< unique requests written at least once
    uint64_t replies = 0;  ///< requests that got exactly one response
    uint64_t lost = 0;     ///< requests with no response at all
    uint64_t duplicates = 0;  ///< stray frames beyond the one reply
    uint64_t unsent = 0;   ///< skipped after an `interrupted` reply
    uint64_t connRetries = 0;
    uint64_t connectFailures = 0;
    uint64_t cached = 0;
    uint64_t coalesced = 0;
    std::map<std::string, uint64_t> statusCounts;
    double latencySumMs = 0.0;
    double latencyMaxMs = 0.0;
    double latencyMinMs = 0.0;
    /// Every per-reply latency, kept raw so the merged report can take
    /// exact nearest-rank percentiles instead of approximations.
    std::vector<double> latencySamplesMs;
    bool sawInterrupted = false;

    void
    merge(const Tally &other)
    {
        sent += other.sent;
        replies += other.replies;
        lost += other.lost;
        duplicates += other.duplicates;
        unsent += other.unsent;
        connRetries += other.connRetries;
        connectFailures += other.connectFailures;
        cached += other.cached;
        coalesced += other.coalesced;
        for (const auto &entry : other.statusCounts)
            statusCounts[entry.first] += entry.second;
        latencySumMs += other.latencySumMs;
        latencySamplesMs.insert(latencySamplesMs.end(),
                                other.latencySamplesMs.begin(),
                                other.latencySamplesMs.end());
        latencyMaxMs = std::max(latencyMaxMs, other.latencyMaxMs);
        if (other.replies > 0)
            latencyMinMs = latencyMinMs == 0.0
                               ? other.latencyMinMs
                               : std::min(latencyMinMs,
                                          other.latencyMinMs);
        sawInterrupted = sawInterrupted || other.sawInterrupted;
    }
};

[[noreturn]] void
usage(const char *argv0, const std::string &why = "")
{
    if (!why.empty())
        std::cerr << argv0 << ": " << why << "\n";
    std::cerr << "usage: " << argv0
              << " --socket PATH | --endpoint HOST:PORT\n"
              << "  [--clients N] [--requests N]\n"
              << "  [--deadline-ms N] [--reply-timeout-ms N]"
              << " [--conn-retries N]\n"
              << "  [--workloads CSV] [--machines CSV]"
              << " [--algorithms CSV] [--speedup]\n"
              << "  [--json FILE] [--version]\n";
    std::exit(2);
}

/** The deterministic request of slot (client, index). */
ServeRequest
requestAt(const LoadConfig &config, int client, int index)
{
    ServeRequest request;
    request.id = static_cast<uint64_t>(client) * 1000000u +
                 static_cast<uint64_t>(index);
    const int slot = client + index;
    request.workload =
        config.workloads[slot % config.workloads.size()];
    request.machine =
        config.machines[(client + index / 3) % config.machines.size()];
    request.algorithm =
        config.algorithms[index % config.algorithms.size()];
    request.deadlineMs = config.deadlineMs;
    request.computeSpeedup = config.speedup;
    return request;
}

/**
 * The wire form of one request: a serve frame, or -- in dist mode --
 * a csched-dist-v1 job frame carrying the same (workload, machine,
 * algorithm) cell.  Algorithm specs are validated in main(), so the
 * parse here cannot fail.
 */
std::string
encodeRequestPayload(const LoadConfig &config,
                     const ServeRequest &request)
{
    if (!config.dist())
        return encodeServeRequest(request);
    JobSpec spec;
    spec.workload = request.workload;
    spec.machine = request.machine;
    spec.algorithm = *parseAlgorithmSpec(request.algorithm);
    spec.computeSpeedup = request.computeSpeedup;
    JobPolicy policy;
    policy.deadlineMs = request.deadlineMs;
    return encodeDistJob(request.id, spec, policy, /*retries=*/0,
                         /*baselines=*/nullptr);
}

/** Protocol-neutral view of one reply frame for the ledger. */
struct ReplyView
{
    bool decodable = false;
    uint64_t id = 0;
    std::string status;
    bool cached = false;
    bool coalesced = false;
};

ReplyView
decodeReply(const LoadConfig &config, const std::string &payload)
{
    ReplyView view;
    if (config.dist()) {
        auto decoded = decodeDistMessage(payload);
        if (!decoded.ok())
            return view;
        view.decodable = true;
        if (decoded->kind != DistMessage::Kind::Result) {
            // Unsolicited non-result frame: an id that cannot match
            // routes it into the duplicate-frame defect count.
            view.id = ~static_cast<uint64_t>(0);
            return view;
        }
        view.id = decoded->id;
        view.status = jobOutcomeName(decoded->result->outcome);
        return view;
    }
    auto response = decodeServeResponse(payload);
    if (!response.ok())
        return view;
    view.decodable = true;
    view.id = response->id;
    view.status = response->status;
    view.cached = response->cached;
    view.coalesced = response->coalesced;
    return view;
}

/**
 * One synchronous client: connect, then write request / read reply in
 * lockstep until the budget is spent or a drain is observed.
 */
void
clientMain(const LoadConfig &config, int client, Tally *tally)
{
    int fd = -1;
    auto reconnect = [&]() -> bool {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
        if (config.dist()) {
            std::string host;
            uint16_t port = 0;
            if (!parseHostPort(config.endpoint, &host, &port).ok())
                return false;
            auto connected =
                connectTcp(host, port, config.connectTimeoutMs);
            if (!connected.ok())
                return false;
            // The dist protocol admits jobs only after the
            // hello/welcome handshake.
            bool welcomed = false;
            if (writeFrame(*connected, encodeDistHello()).ok()) {
                const FrameResult frame =
                    readFrame(*connected, config.connectTimeoutMs,
                              config.maxFrameBytes());
                if (frame.ok()) {
                    auto decoded = decodeDistMessage(frame.payload);
                    welcomed =
                        decoded.ok() &&
                        decoded->kind == DistMessage::Kind::Welcome;
                }
            }
            if (!welcomed) {
                ::close(*connected);
                return false;
            }
            fd = *connected;
            return true;
        }
        auto connected =
            connectUnix(config.socketPath, config.connectTimeoutMs);
        if (!connected.ok())
            return false;
        fd = *connected;
        return true;
    };
    if (!reconnect()) {
        ++tally->connectFailures;
        tally->unsent += static_cast<uint64_t>(config.requests);
        return;
    }

    uint64_t replies_on_connection = 0;
    for (int index = 0; index < config.requests; ++index) {
        if (tally->sawInterrupted) {
            // The daemon is draining; a well-behaved client stops.
            tally->unsent +=
                static_cast<uint64_t>(config.requests - index);
            break;
        }
        const ServeRequest request = requestAt(config, client, index);
        const std::string payload =
            encodeRequestPayload(config, request);

        bool counted_sent = false;
        bool answered = false;
        for (int attempt = 0; attempt <= config.connRetries;
             ++attempt) {
            // Resending is only safe when the old connection cannot
            // deliver a reply anymore and never did: a failed write,
            // or a connection that died (FIN or RST) before its
            // *first* reply -- the serve.accept fault closes unread
            // connections, which arrives as an RST when our frame
            // was still buffered server-side.  Everything else -- a
            // timeout on a live connection, a mid-conversation death
            // -- may already have a reply in flight or owed, and a
            // resend could duplicate it.
            bool retryable = false;
            if (fd < 0) {
                if (!reconnect()) {
                    ++tally->connectFailures;
                    break;  // daemon gone; the request is unanswered
                }
                replies_on_connection = 0;
            }
            const Clock::time_point wrote = Clock::now();
            if (!writeFrame(fd, payload).ok()) {
                ::close(fd);
                fd = -1;
                ++tally->connRetries;
                continue;
            }
            if (!counted_sent) {
                ++tally->sent;
                counted_sent = true;
            }

            // Read until *our* reply; any other frame on a
            // synchronous connection is a duplicate-reply defect.
            for (;;) {
                FrameResult frame =
                    readFrame(fd, config.replyTimeoutMs,
                              config.maxFrameBytes());
                if (frame.kind == FrameResult::Kind::Payload) {
                    const ReplyView reply =
                        decodeReply(config, frame.payload);
                    if (!reply.decodable) {
                        ++tally->statusCounts["undecodable"];
                        ++tally->replies;
                        answered = true;
                        break;
                    }
                    if (reply.id != request.id) {
                        ++tally->duplicates;
                        continue;
                    }
                    ++tally->replies;
                    ++replies_on_connection;
                    answered = true;
                    ++tally->statusCounts[reply.status];
                    if (reply.cached)
                        ++tally->cached;
                    if (reply.coalesced)
                        ++tally->coalesced;
                    if (reply.status == "interrupted")
                        tally->sawInterrupted = true;
                    const double latency =
                        std::chrono::duration<double, std::milli>(
                            Clock::now() - wrote)
                            .count();
                    tally->latencySumMs += latency;
                    tally->latencySamplesMs.push_back(latency);
                    tally->latencyMaxMs =
                        std::max(tally->latencyMaxMs, latency);
                    tally->latencyMinMs =
                        tally->latencyMinMs == 0.0
                            ? latency
                            : std::min(tally->latencyMinMs, latency);
                    break;
                }
                if ((frame.kind == FrameResult::Kind::Eof ||
                     frame.kind == FrameResult::Kind::Malformed) &&
                    replies_on_connection == 0) {
                    // Dead before its first reply -- a clean FIN, or
                    // the RST a server close sends when our frame was
                    // still unread in its receive buffer (the
                    // serve.accept refusal path).  Either way no
                    // request of ours was answered on this connection
                    // and, closed, it can never deliver a late reply;
                    // resending on a fresh connection cannot
                    // duplicate one.
                    ::close(fd);
                    fd = -1;
                    ++tally->connRetries;
                    retryable = true;
                    break;
                }
                // EOF mid-conversation or a timeout/malformed frame:
                // this request has no reply, and resending would risk
                // a duplicate.  Count the loss and move on.
                if (fd >= 0) {
                    ::close(fd);
                    fd = -1;
                }
                break;
            }
            if (answered || !retryable)
                break;
        }
        if (counted_sent && !answered)
            ++tally->lost;
        if (!counted_sent) {
            tally->unsent +=
                static_cast<uint64_t>(config.requests - index);
            break;  // could not even deliver the frame; stop
        }
    }

    // Stray-frame sweep: a synchronous client that is done should see
    // silence; anything readable here is a duplicated reply.
    if (fd >= 0) {
        for (;;) {
            FrameResult frame =
                readFrame(fd, 50, config.maxFrameBytes());
            if (frame.kind != FrameResult::Kind::Payload)
                break;
            ++tally->duplicates;
        }
        ::close(fd);
    }
}

std::string
loadReport(const LoadConfig &config, const Tally &total,
           double seconds)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        w.key("schema").value("csched-load-report-v1");
        w.key("transport").value(config.dist() ? "tcp-dist"
                                               : "unix-serve");
        w.key("socket").value(config.dist() ? config.endpoint
                                            : config.socketPath);
        w.key("config").beginObject();
        w.key("clients").value(config.clients);
        w.key("requestsPerClient").value(config.requests);
        w.key("deadlineMs").value(config.deadlineMs);
        w.key("workloads").beginArray();
        for (const auto &name : config.workloads)
            w.value(name);
        w.endArray();
        w.key("machines").beginArray();
        for (const auto &name : config.machines)
            w.value(name);
        w.endArray();
        w.key("algorithms").beginArray();
        for (const auto &name : config.algorithms)
            w.value(name);
        w.endArray();
        w.key("computeSpeedup").value(config.speedup);
        w.endObject();
        w.key("totals").beginObject();
        w.key("sent").value(total.sent);
        w.key("replies").value(total.replies);
        w.key("lost").value(total.lost);
        w.key("duplicates").value(total.duplicates);
        w.key("unsent").value(total.unsent);
        w.key("connRetries").value(total.connRetries);
        w.key("connectFailures").value(total.connectFailures);
        w.key("cached").value(total.cached);
        w.key("coalesced").value(total.coalesced);
        w.endObject();
        w.key("statusCounts").beginObject();
        for (const auto &entry : total.statusCounts)
            w.key(entry.first).value(entry.second);
        w.endObject();
        w.key("latencyMs").beginObject();
        w.key("min").value(total.latencyMinMs);
        w.key("mean").value(total.replies > 0
                                ? total.latencySumMs /
                                      static_cast<double>(
                                          total.replies)
                                : 0.0);
        // Nearest-rank percentiles over the merged per-reply samples:
        // exact observed values, deterministic for a fixed ledger.
        w.key("p50").value(percentile(total.latencySamplesMs, 50.0));
        w.key("p95").value(percentile(total.latencySamplesMs, 95.0));
        w.key("p99").value(percentile(total.latencySamplesMs, 99.0));
        w.key("max").value(total.latencyMaxMs);
        w.endObject();
        w.key("sawDrain").value(total.sawInterrupted);
        w.key("seconds").value(seconds);
        w.endObject();
    }
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    LoadConfig config;
    for (int k = 1; k < argc; ++k) {
        const std::string arg = argv[k];
        auto next = [&]() -> std::string {
            if (k + 1 >= argc)
                usage(argv[0], arg + " needs a value");
            return argv[++k];
        };
        auto nextInt = [&]() -> int {
            const std::string text = next();
            try {
                std::size_t used = 0;
                const int value = std::stoi(text, &used);
                if (used != text.size() || value < 0)
                    throw std::invalid_argument(text);
                return value;
            } catch (...) {
                usage(argv[0], arg +
                                   " expects a non-negative integer, "
                                   "got '" +
                                   text + "'");
            }
        };
        if (arg == "--version") {
            return printToolVersion("csched_load");
        } else if (arg == "--socket") {
            config.socketPath = next();
        } else if (arg == "--endpoint") {
            config.endpoint = next();
        } else if (arg == "--clients") {
            config.clients = nextInt();
        } else if (arg == "--requests") {
            config.requests = nextInt();
        } else if (arg == "--deadline-ms") {
            config.deadlineMs = nextInt();
        } else if (arg == "--reply-timeout-ms") {
            config.replyTimeoutMs = nextInt();
        } else if (arg == "--conn-retries") {
            config.connRetries = nextInt();
        } else if (arg == "--workloads") {
            config.workloads = split(next(), ',');
        } else if (arg == "--machines") {
            config.machines = split(next(), ',');
        } else if (arg == "--algorithms") {
            config.algorithms = split(next(), ',');
        } else if (arg == "--speedup") {
            config.speedup = true;
        } else if (arg == "--json") {
            config.jsonFile = next();
        } else {
            usage(argv[0], "unknown option '" + arg + "'");
        }
    }
    if (config.socketPath.empty() == config.endpoint.empty())
        usage(argv[0],
              "exactly one of --socket or --endpoint is required");
    if (config.dist()) {
        std::string host;
        uint16_t port = 0;
        const Status parsed =
            parseHostPort(config.endpoint, &host, &port);
        if (!parsed.ok())
            usage(argv[0], "--endpoint: " + parsed.message());
        for (const std::string &algorithm : config.algorithms) {
            std::string why;
            if (!parseAlgorithmSpec(algorithm, &why).has_value())
                usage(argv[0], "--algorithms: " + why);
        }
    }
    if (config.clients < 1 || config.requests < 1)
        usage(argv[0], "--clients and --requests must be >= 1");
    if (config.workloads.empty() || config.machines.empty() ||
        config.algorithms.empty())
        usage(argv[0], "workload/machine/algorithm mixes must be "
                       "non-empty");

    const Clock::time_point started = Clock::now();
    std::vector<Tally> tallies(
        static_cast<std::size_t>(config.clients));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(config.clients));
    for (int client = 0; client < config.clients; ++client)
        threads.emplace_back(clientMain, std::cref(config), client,
                             &tallies[static_cast<std::size_t>(
                                 client)]);
    for (std::thread &thread : threads)
        thread.join();

    Tally total;
    for (const Tally &tally : tallies)
        total.merge(tally);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - started)
            .count();

    const std::string report = loadReport(config, total, seconds);
    if (config.jsonFile == "-") {
        std::cout << report << "\n";
    } else if (!config.jsonFile.empty()) {
        const Status written =
            writeFileAtomic(config.jsonFile, report);
        if (!written.ok()) {
            std::cerr << argv[0] << ": " << written.toString()
                      << "\n";
            return 1;
        }
    }

    std::cerr << "csched_load: sent " << total.sent << ", replies "
              << total.replies << ", lost " << total.lost
              << ", duplicates " << total.duplicates << ", unsent "
              << total.unsent << ", drain "
              << (total.sawInterrupted ? "seen" : "not seen") << "\n";
    return total.lost == 0 && total.duplicates == 0 ? 0 : 1;
}
