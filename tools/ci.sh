#!/usr/bin/env bash
# Full verification sweep: build and run the whole test suite under a
# plain build and a ThreadSanitizer build (which is what proves the
# thread pool's exception barrier and the runner's determinism
# machinery are actually race-free, not just lucky), run the
# crash-safety tier (tier2) once more under AddressSanitizer (the
# journal and atomic-file paths do raw POSIX I/O), and finish with an
# end-to-end kill-and-resume smoke test against the real csched_bench
# binary: SIGTERM a journaled grid mid-run, expect a graceful 143,
# resume, and demand a byte-identical report.
#
#   tools/ci.sh [BUILD_DIR_PREFIX]
#
# Exits non-zero on the first failing step.

set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"

build() {
    local build_dir="$1"
    shift
    echo "=== configure ${build_dir} ($*)"
    cmake -B "${build_dir}" -S . "$@" >/dev/null
    echo "=== build ${build_dir}"
    cmake --build "${build_dir}" -j >/dev/null
}

run_suite() {
    local build_dir="$1"
    shift
    build "${build_dir}" "$@"
    echo "=== tier1 ${build_dir}"
    ctest --test-dir "${build_dir}" -L tier1 -j --output-on-failure
    echo "=== tier2 ${build_dir}"
    ctest --test-dir "${build_dir}" -L tier2 -j --output-on-failure
}

# The runner/journal subsystem under ASan: raw write/fsync/rename
# paths, signal-flag handling, and the resume replay buffers.
run_tier2_asan() {
    local build_dir="$1"
    build "${build_dir}" -DCSCHED_SANITIZE=address
    echo "=== tier2 ${build_dir} (asan)"
    ctest --test-dir "${build_dir}" -L tier2 -j --output-on-failure
}

kill_resume_smoke() {
    local bench="$1/tools/csched_bench"
    echo "=== kill-and-resume smoke"
    local tmp
    tmp="$(mktemp -d)"
    local args=(--workloads vvmul,fir --machines vliw2
                --algorithms uas,convergent --jobs 2 --quiet
                --no-timings)

    "${bench}" "${args[@]}" --json "${tmp}/base.json"

    # Slow every job so SIGTERM lands mid-grid; the run must drain,
    # journal what finished, and exit 128+15.
    "${bench}" "${args[@]}" --json "${tmp}/partial.json" \
        --journal "${tmp}/journal.jsonl" \
        --inject 'runner.job.start=slow:ms=200' &
    local pid=$!
    sleep 0.3
    kill -TERM "${pid}"
    local code=0
    wait "${pid}" || code=$?
    if [ "${code}" -ne 143 ]; then
        echo "kill-and-resume: expected exit 143 after SIGTERM," \
             "got ${code}" >&2
        exit 1
    fi
    grep -q '"interrupted": true' "${tmp}/partial.json" || {
        echo "kill-and-resume: partial report not marked interrupted" >&2
        exit 1
    }

    "${bench}" "${args[@]}" --json "${tmp}/final.json" \
        --journal "${tmp}/journal.jsonl" --resume
    diff "${tmp}/base.json" "${tmp}/final.json" || {
        echo "kill-and-resume: resumed report differs from an" \
             "uninterrupted run" >&2
        exit 1
    }
    rm -rf "${tmp}"
    echo "=== kill-and-resume ok (143 on SIGTERM, byte-identical resume)"
}

run_suite "${prefix}-plain"
run_suite "${prefix}-tsan" -DCSCHED_SANITIZE=thread
run_tier2_asan "${prefix}-asan"
kill_resume_smoke "${prefix}-plain"

echo "=== all suites passed (plain + tsan + asan tier2 + kill/resume)"
