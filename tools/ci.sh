#!/usr/bin/env bash
# Full verification sweep: build and run the whole test suite under a
# plain build and a ThreadSanitizer build (which is what proves the
# thread pool's exception barrier and the runner's determinism
# machinery are actually race-free, not just lucky), run the
# crash-safety tier (tier2) once more under AddressSanitizer (the
# journal and atomic-file paths do raw POSIX I/O) and under fatal
# UBSan (the worker pipe protocol decodes raw, deliberately corrupted
# frames), and finish with two end-to-end smoke tests against the real
# csched_bench binary: SIGTERM a journaled grid mid-run, expect a
# graceful 143, resume, and demand a byte-identical report; then
# inject a worker segfault and a worker hang under --isolate and
# demand both are contained as per-cell outcomes (exit 1) with the
# healthy cells salvaged.  The serve drain smoke (plain and ASan) runs
# the csched_serve daemon under fault-injected csched_load traffic,
# SIGTERMs it mid-load, and demands a graceful drain: exit 143, no
# orphaned workers, socket unlinked, and a load ledger proving every
# request got exactly one structured reply.  The dist fleet smoke
# (plain and ASan) runs a grid over two localhost csched_workerd
# daemons, injects a network partition and SIGKILLs one daemon
# mid-grid, and demands the grid heal by lease reassignment with a
# report byte-identical to the in-process run.  The degraded-grid
# smoke (plain and ASan) sweeps seeded fault-mapped meshes and demands
# byte-identical reports across --jobs and under --isolate.
#
#   tools/ci.sh [BUILD_DIR_PREFIX]
#
# Exits non-zero on the first failing step.

set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"

build() {
    local build_dir="$1"
    shift
    echo "=== configure ${build_dir} ($*)"
    # Deprecation windows are one release long; erroring on deprecated
    # declarations here keeps expired shims from creeping back.
    cmake -B "${build_dir}" -S . \
        -DCSCHED_WERROR_DEPRECATED=ON "$@" >/dev/null
    echo "=== build ${build_dir}"
    cmake --build "${build_dir}" -j >/dev/null
}

run_suite() {
    local build_dir="$1"
    shift
    build "${build_dir}" "$@"
    echo "=== tier1 ${build_dir}"
    ctest --test-dir "${build_dir}" -L tier1 -j --output-on-failure
    echo "=== tier2 ${build_dir}"
    ctest --test-dir "${build_dir}" -L tier2 -j --output-on-failure
}

# The runner/journal subsystem under ASan: raw write/fsync/rename
# paths, signal-flag handling, and the resume replay buffers.
run_tier2_asan() {
    local build_dir="$1"
    build "${build_dir}" -DCSCHED_SANITIZE=address
    echo "=== tier2 ${build_dir} (asan)"
    ctest --test-dir "${build_dir}" -L tier2 -j --output-on-failure
}

# The same tier once more under fatal UBSan: the worker pipe protocol
# decodes raw length prefixes and frames that tests deliberately
# truncate and corrupt, which is where undefined behaviour would hide.
run_tier2_ubsan() {
    local build_dir="$1"
    build "${build_dir}" -DCSCHED_SANITIZE=undefined
    echo "=== tier2 ${build_dir} (ubsan)"
    ctest --test-dir "${build_dir}" -L tier2 -j --output-on-failure
}

kill_resume_smoke() {
    local bench="$1/tools/csched_bench"
    echo "=== kill-and-resume smoke"
    local tmp
    tmp="$(mktemp -d)"
    local args=(--workloads vvmul,fir --machines vliw2
                --algorithms uas,convergent --jobs 2 --quiet
                --no-timings)

    "${bench}" "${args[@]}" --json "${tmp}/base.json"

    # Slow every job so SIGTERM lands mid-grid; the run must drain,
    # journal what finished, and exit 128+15.
    "${bench}" "${args[@]}" --json "${tmp}/partial.json" \
        --journal "${tmp}/journal.jsonl" \
        --inject 'runner.job.start=slow:ms=200' &
    local pid=$!
    sleep 0.3
    kill -TERM "${pid}"
    local code=0
    wait "${pid}" || code=$?
    if [ "${code}" -ne 143 ]; then
        echo "kill-and-resume: expected exit 143 after SIGTERM," \
             "got ${code}" >&2
        exit 1
    fi
    grep -q '"interrupted": true' "${tmp}/partial.json" || {
        echo "kill-and-resume: partial report not marked interrupted" >&2
        exit 1
    }

    "${bench}" "${args[@]}" --json "${tmp}/final.json" \
        --journal "${tmp}/journal.jsonl" --resume
    diff "${tmp}/base.json" "${tmp}/final.json" || {
        echo "kill-and-resume: resumed report differs from an" \
             "uninterrupted run" >&2
        exit 1
    }
    rm -rf "${tmp}"
    echo "=== kill-and-resume ok (143 on SIGTERM, byte-identical resume)"
}

# Perf regression gate: re-measure the quick cell set in the optimised
# build and compare against the checked-in BENCH_*.json baselines at
# the repo root (csched-bench-report-v1; see DESIGN.md s10).  The gate
# fails on a >15% median slowdown in any cell and prints the
# per-kernel delta table.  Single-core timer noise at 3 repeats stays
# well inside that margin; re-baseline with `csched_bench perf` when a
# deliberate perf change moves the needle.
perf_gate() {
    local bench="$1/tools/csched_bench"
    echo "=== perf gate (vs checked-in baselines)"
    "${bench}" perf --quick --check --baseline-dir . \
        --out-dir "$(mktemp -d)" || {
        echo "perf gate: regression against the checked-in baseline" >&2
        exit 1
    }
    echo "=== perf gate ok"
}

# End-to-end containment smoke against the real binary: one cell's
# worker segfaults, another hangs past its deadline; under --isolate
# both must come back as recorded per-cell outcomes (exit 1 per the
# grid's exit contract -- job failures, not a runner error), with the
# healthy cells salvaged.
containment_smoke() {
    local bench="$1/tools/csched_bench"
    echo "=== worker containment smoke"
    local tmp
    tmp="$(mktemp -d)"
    local code=0
    "${bench}" --workloads vvmul,fir --machines vliw2 \
        --algorithms uas,convergent --jobs 4 --quiet --no-timings \
        --isolate --deadline-ms 2000 --json "${tmp}/report.json" \
        --inject 'worker.crash=fail:match=fir/vliw2/uas;worker.hang=fail:match=vvmul/vliw2/convergent' \
        || code=$?
    if [ "${code}" -ne 1 ]; then
        echo "containment: expected exit 1 (contained job failures)," \
             "got ${code}" >&2
        exit 1
    fi
    grep -q '"error": "worker-crashed"' "${tmp}/report.json" || {
        echo "containment: segfaulted cell not marked worker-crashed" >&2
        exit 1
    }
    grep -q '"error": "worker-killed"' "${tmp}/report.json" || {
        echo "containment: hung cell not marked worker-killed" >&2
        exit 1
    }
    if [ "$(grep -c '"outcome": "ok"' "${tmp}/report.json")" -ne 2 ]; then
        echo "containment: healthy cells were not salvaged" >&2
        exit 1
    fi
    rm -rf "${tmp}"
    echo "=== containment ok (crash + hang contained, healthy cells salvaged)"
}

# Online replay smoke: stream scheduling must be deterministic and
# replayable.  Run an online grid serially and with a thread pool and
# demand byte-identical reports; then emit the arrival trace from a
# generated stream, replay it through stream:trace:file=, and demand
# the replay reproduces the same weighted-completion numbers.  Run on
# the TSan build so the online commit loop inside worker threads is
# also race-checked.
online_replay_smoke() {
    local bench="$1/tools/csched_bench"
    local cli="$1/tools/csched_cli"
    echo "=== online replay smoke"
    local tmp
    tmp="$(mktemp -d)"
    local stream='stream:bursty:n=10:seed=7:gap=400:burst=3:workloads=fir+vvmul'
    local args=(--workloads "${stream}" --machines vliw2,vliw4
                --algorithms online-convergent,online-pcc
                --quiet --no-timings)

    "${bench}" "${args[@]}" --jobs 1 --json "${tmp}/serial.json"
    "${bench}" "${args[@]}" --jobs 4 --json "${tmp}/parallel.json"
    diff "${tmp}/serial.json" "${tmp}/parallel.json" || {
        echo "online smoke: report depends on --jobs" >&2
        exit 1
    }
    grep -q '"weightedCompletion"' "${tmp}/serial.json" || {
        echo "online smoke: report carries no online metrics" >&2
        exit 1
    }

    "${cli}" --online --streams "${stream}" --machines vliw4 \
        --policies online-convergent --emit-trace "${tmp}/trace.jsonl" \
        --json "${tmp}/live.json" >/dev/null
    "${cli}" --online --streams "stream:trace:file=${tmp}/trace.jsonl" \
        --machines vliw4 --policies online-convergent \
        --json "${tmp}/replay.json" >/dev/null
    local live replay
    live="$(grep -o '"weightedCompletion": [0-9]*' "${tmp}/live.json")"
    replay="$(grep -o '"weightedCompletion": [0-9]*' "${tmp}/replay.json")"
    if [ -z "${live}" ] || [ "${live}" != "${replay}" ]; then
        echo "online smoke: trace replay diverged from the live run" >&2
        echo "live:   ${live}" >&2
        echo "replay: ${replay}" >&2
        exit 1
    fi
    rm -rf "${tmp}"
    echo "=== online replay smoke ok (byte-identical across --jobs," \
         "trace replay reproduces metrics)"
}

# Degraded-machine smoke: a grid over seeded fault-mapped meshes (dead
# tiles, dead links, slowed tiles) with all four algorithms must
# produce byte-identical reports across --jobs values and under
# --isolate -- the dead sets are rebuilt deterministically from the
# spec text on whichever worker runs the job, so no fault state ever
# crosses a process boundary.  Exit 0 also asserts every algorithm
# produced a checker-valid schedule on the degraded machines.
degraded_grid_smoke() {
    local build_dir="$1"
    local tag="$2"
    local bench="${build_dir}/tools/csched_bench"
    echo "=== degraded grid smoke (${tag})"
    local tmp
    tmp="$(mktemp -d)"
    local args=(--workloads jacobi,sha
                --machines 'raw4x4,raw4x4/faults=seed:7,tiles:12%,links:5%,slow:12%'
                --algorithms uas,convergent,pcc,rawcc
                --quiet --no-timings)
    "${bench}" "${args[@]}" --jobs 1 --json "${tmp}/serial.json"
    "${bench}" "${args[@]}" --jobs 4 --json "${tmp}/parallel.json"
    "${bench}" "${args[@]}" --jobs 4 --isolate \
        --json "${tmp}/isolated.json"
    diff "${tmp}/serial.json" "${tmp}/parallel.json" || {
        echo "degraded smoke: report depends on --jobs" >&2
        exit 1
    }
    diff "${tmp}/serial.json" "${tmp}/isolated.json" || {
        echo "degraded smoke: report differs under --isolate" >&2
        exit 1
    }
    grep -q 'faults=seed' "${tmp}/serial.json" || {
        echo "degraded smoke: degraded machine missing from report" >&2
        exit 1
    }
    rm -rf "${tmp}"
    echo "=== degraded grid smoke ok (${tag}: byte-identical across" \
         "--jobs and --isolate)"
}

# End-to-end serve drain smoke: the daemon under fault-injected load
# (admission refusals, rewritten replies, workers that crash on first
# dispatch and heal on retry), SIGTERM mid-load.  The daemon must
# drain gracefully -- exit 143, socket unlinked, no orphaned worker
# processes -- and the load ledger must balance: zero lost and zero
# duplicated replies, with the drain visible as `interrupted` ones.
serve_smoke() {
    local build_dir="$1"
    local tag="$2"
    local serve="${build_dir}/tools/csched_serve"
    local load="${build_dir}/tools/csched_load"
    echo "=== serve drain smoke (${tag})"
    local tmp
    tmp="$(mktemp -d)"
    local sock="${tmp}/serve.sock"

    # --cache 0 so every admitted request runs a real job, which keeps
    # the load running long enough that SIGTERM lands mid-run; the
    # small queue exercises `overloaded` backpressure at the same time.
    "${serve}" --socket "${sock}" --workers 2 --dispatchers 2 \
        --queue 8 --cache 0 --retries 1 \
        --inject 'serve.admit=fail:nth=3;serve.reply=fail:nth=5;worker.crash=fail:match=vvmul/vliw2/uas:nth=1' &
    local serve_pid=$!

    "${load}" --socket "${sock}" --clients 12 --requests 80 \
        --json "${tmp}/load.json" &
    local load_pid=$!

    sleep 0.6
    kill -TERM "${serve_pid}"
    local serve_code=0
    wait "${serve_pid}" || serve_code=$?
    local load_code=0
    wait "${load_pid}" || load_code=$?

    if [ "${serve_code}" -ne 143 ]; then
        echo "serve smoke: expected a graceful drain exit 143 after" \
             "SIGTERM, got ${serve_code}" >&2
        exit 1
    fi
    if [ "${load_code}" -ne 0 ]; then
        echo "serve smoke: load ledger did not balance" \
             "(csched_load exit ${load_code})" >&2
        cat "${tmp}/load.json" >&2 || true
        exit 1
    fi
    # Workers share the daemon's argv, so the unique per-run socket
    # path finds any orphan -- without ever matching this shell.
    if pgrep -f "${sock}" >/dev/null; then
        echo "serve smoke: processes survived the drain:" >&2
        pgrep -af "${sock}" >&2
        exit 1
    fi
    if [ -e "${sock}" ]; then
        echo "serve smoke: socket file not unlinked by the drain" >&2
        exit 1
    fi
    grep -q '"schema": "csched-load-report-v1"' "${tmp}/load.json" || {
        echo "serve smoke: malformed load report" >&2
        exit 1
    }
    grep -q '"lost": 0' "${tmp}/load.json" || {
        echo "serve smoke: lost replies under drain" >&2
        cat "${tmp}/load.json" >&2
        exit 1
    }
    grep -q '"duplicates": 0' "${tmp}/load.json" || {
        echo "serve smoke: duplicated replies under drain" >&2
        cat "${tmp}/load.json" >&2
        exit 1
    }
    grep -q '"sawDrain": true' "${tmp}/load.json" || {
        echo "serve smoke: SIGTERM did not land mid-load" \
             "(no interrupted reply observed)" >&2
        exit 1
    }
    grep -q '"p99":' "${tmp}/load.json" || {
        echo "serve smoke: load report missing latency percentiles" >&2
        cat "${tmp}/load.json" >&2
        exit 1
    }
    rm -rf "${tmp}"
    echo "=== serve drain smoke ok (${tag}: 143, ledger balanced," \
         "no orphans)"
}

# End-to-end distributed smoke: a two-daemon localhost fleet under
# injected network faults (a partition on one cell's primary dispatch)
# plus a real SIGKILL of one daemon mid-grid.  The grid must heal by
# lease reassignment -- exit 0, report byte-identical to the same grid
# run in-process -- and the killed fleet must leave no orphaned
# processes behind.
dist_smoke() {
    local build_dir="$1"
    local tag="$2"
    local bench="${build_dir}/tools/csched_bench"
    local workerd="${build_dir}/tools/csched_workerd"
    echo "=== dist fleet smoke (${tag})"
    local tmp
    tmp="$(mktemp -d)"
    local args=(--workloads fir,vvmul,jacobi,mxm --machines vliw2,vliw4
                --algorithms uas,convergent --jobs 4 --quiet
                --no-timings)

    "${bench}" "${args[@]}" --json "${tmp}/base.json"

    # The port-file handshake: ephemeral ports, discovered once the
    # daemon is actually listening.  The unique --port-file path also
    # marks each daemon's argv for the orphan sweep below.
    "${workerd}" --port 0 --workers 2 --port-file "${tmp}/a.port" &
    local pid_a=$!
    "${workerd}" --port 0 --workers 2 --port-file "${tmp}/b.port" &
    local pid_b=$!
    for _ in $(seq 100); do
        [ -s "${tmp}/a.port" ] && [ -s "${tmp}/b.port" ] && break
        sleep 0.05
    done
    if [ ! -s "${tmp}/a.port" ] || [ ! -s "${tmp}/b.port" ]; then
        echo "dist smoke: workerd never wrote its port file" >&2
        exit 1
    fi
    local hosts="127.0.0.1:$(cat "${tmp}/a.port"),127.0.0.1:$(cat "${tmp}/b.port")"

    # Slow the jobs so the SIGKILL lands mid-grid, partition one cell's
    # first dispatch, and shrink the liveness/reconnect knobs so the
    # healing happens inside smoke-test time.
    "${bench}" "${args[@]}" --json "${tmp}/dist.json" \
        --hosts "${hosts}" \
        --dist-opts 'liveness-timeout-ms=800,heartbeat-interval-ms=100,reconnect-base-ms=20,partition-ms=300' \
        --inject 'runner.job.start=slow:ms=150;net.partition=fail:nth=1:match=fir/*' &
    local bench_pid=$!
    sleep 0.9
    kill -KILL "${pid_a}"
    local code=0
    wait "${bench_pid}" || code=$?
    wait "${pid_a}" 2>/dev/null || true
    if [ "${code}" -ne 0 ]; then
        echo "dist smoke: grid did not survive the partition +" \
             "SIGKILL (exit ${code})" >&2
        cat "${tmp}/dist.json" >&2 || true
        exit 1
    fi
    diff "${tmp}/base.json" "${tmp}/dist.json" || {
        echo "dist smoke: fleet report differs from the in-process" \
             "run" >&2
        exit 1
    }

    # Graceful drain of the survivor: SIGTERM, exit 143, no orphans.
    kill -TERM "${pid_b}"
    local drain_code=0
    wait "${pid_b}" || drain_code=$?
    if [ "${drain_code}" -ne 143 ]; then
        echo "dist smoke: surviving workerd did not drain gracefully" \
             "(exit ${drain_code})" >&2
        exit 1
    fi
    if pgrep -f "${tmp}/a.port" >/dev/null || \
       pgrep -f "${tmp}/b.port" >/dev/null; then
        echo "dist smoke: processes survived the fleet shutdown:" >&2
        pgrep -af "${tmp}" >&2
        exit 1
    fi
    rm -rf "${tmp}"
    echo "=== dist fleet smoke ok (${tag}: partition + SIGKILL healed," \
         "byte-identical report, no orphans)"
}

run_suite "${prefix}-plain"
run_suite "${prefix}-tsan" -DCSCHED_SANITIZE=thread
run_tier2_asan "${prefix}-asan"
run_tier2_ubsan "${prefix}-ubsan"
kill_resume_smoke "${prefix}-plain"
containment_smoke "${prefix}-plain"
online_replay_smoke "${prefix}-tsan"
degraded_grid_smoke "${prefix}-plain" plain
degraded_grid_smoke "${prefix}-asan" asan
serve_smoke "${prefix}-plain" plain
serve_smoke "${prefix}-asan" asan
dist_smoke "${prefix}-plain" plain
dist_smoke "${prefix}-asan" asan
perf_gate "${prefix}-plain"

echo "=== all suites passed (plain + tsan + asan/ubsan tier2 + smokes + online replay + degraded grid + serve drain + dist fleet + perf gate)"
