#!/usr/bin/env bash
# Full verification sweep: build and run the whole test suite under a
# plain build and a ThreadSanitizer build (which is what proves the
# thread pool's exception barrier and the runner's determinism
# machinery are actually race-free, not just lucky), run the
# crash-safety tier (tier2) once more under AddressSanitizer (the
# journal and atomic-file paths do raw POSIX I/O) and under fatal
# UBSan (the worker pipe protocol decodes raw, deliberately corrupted
# frames), and finish with two end-to-end smoke tests against the real
# csched_bench binary: SIGTERM a journaled grid mid-run, expect a
# graceful 143, resume, and demand a byte-identical report; then
# inject a worker segfault and a worker hang under --isolate and
# demand both are contained as per-cell outcomes (exit 1) with the
# healthy cells salvaged.
#
#   tools/ci.sh [BUILD_DIR_PREFIX]
#
# Exits non-zero on the first failing step.

set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"

build() {
    local build_dir="$1"
    shift
    echo "=== configure ${build_dir} ($*)"
    cmake -B "${build_dir}" -S . "$@" >/dev/null
    echo "=== build ${build_dir}"
    cmake --build "${build_dir}" -j >/dev/null
}

run_suite() {
    local build_dir="$1"
    shift
    build "${build_dir}" "$@"
    echo "=== tier1 ${build_dir}"
    ctest --test-dir "${build_dir}" -L tier1 -j --output-on-failure
    echo "=== tier2 ${build_dir}"
    ctest --test-dir "${build_dir}" -L tier2 -j --output-on-failure
}

# The runner/journal subsystem under ASan: raw write/fsync/rename
# paths, signal-flag handling, and the resume replay buffers.
run_tier2_asan() {
    local build_dir="$1"
    build "${build_dir}" -DCSCHED_SANITIZE=address
    echo "=== tier2 ${build_dir} (asan)"
    ctest --test-dir "${build_dir}" -L tier2 -j --output-on-failure
}

# The same tier once more under fatal UBSan: the worker pipe protocol
# decodes raw length prefixes and frames that tests deliberately
# truncate and corrupt, which is where undefined behaviour would hide.
run_tier2_ubsan() {
    local build_dir="$1"
    build "${build_dir}" -DCSCHED_SANITIZE=undefined
    echo "=== tier2 ${build_dir} (ubsan)"
    ctest --test-dir "${build_dir}" -L tier2 -j --output-on-failure
}

kill_resume_smoke() {
    local bench="$1/tools/csched_bench"
    echo "=== kill-and-resume smoke"
    local tmp
    tmp="$(mktemp -d)"
    local args=(--workloads vvmul,fir --machines vliw2
                --algorithms uas,convergent --jobs 2 --quiet
                --no-timings)

    "${bench}" "${args[@]}" --json "${tmp}/base.json"

    # Slow every job so SIGTERM lands mid-grid; the run must drain,
    # journal what finished, and exit 128+15.
    "${bench}" "${args[@]}" --json "${tmp}/partial.json" \
        --journal "${tmp}/journal.jsonl" \
        --inject 'runner.job.start=slow:ms=200' &
    local pid=$!
    sleep 0.3
    kill -TERM "${pid}"
    local code=0
    wait "${pid}" || code=$?
    if [ "${code}" -ne 143 ]; then
        echo "kill-and-resume: expected exit 143 after SIGTERM," \
             "got ${code}" >&2
        exit 1
    fi
    grep -q '"interrupted": true' "${tmp}/partial.json" || {
        echo "kill-and-resume: partial report not marked interrupted" >&2
        exit 1
    }

    "${bench}" "${args[@]}" --json "${tmp}/final.json" \
        --journal "${tmp}/journal.jsonl" --resume
    diff "${tmp}/base.json" "${tmp}/final.json" || {
        echo "kill-and-resume: resumed report differs from an" \
             "uninterrupted run" >&2
        exit 1
    }
    rm -rf "${tmp}"
    echo "=== kill-and-resume ok (143 on SIGTERM, byte-identical resume)"
}

# Perf regression gate: re-measure the quick cell set in the optimised
# build and compare against the checked-in BENCH_*.json baselines at
# the repo root (csched-bench-report-v1; see DESIGN.md s10).  The gate
# fails on a >15% median slowdown in any cell and prints the
# per-kernel delta table.  Single-core timer noise at 3 repeats stays
# well inside that margin; re-baseline with `csched_bench perf` when a
# deliberate perf change moves the needle.
perf_gate() {
    local bench="$1/tools/csched_bench"
    echo "=== perf gate (vs checked-in baselines)"
    "${bench}" perf --quick --check --baseline-dir . \
        --out-dir "$(mktemp -d)" || {
        echo "perf gate: regression against the checked-in baseline" >&2
        exit 1
    }
    echo "=== perf gate ok"
}

# End-to-end containment smoke against the real binary: one cell's
# worker segfaults, another hangs past its deadline; under --isolate
# both must come back as recorded per-cell outcomes (exit 1 per the
# grid's exit contract -- job failures, not a runner error), with the
# healthy cells salvaged.
containment_smoke() {
    local bench="$1/tools/csched_bench"
    echo "=== worker containment smoke"
    local tmp
    tmp="$(mktemp -d)"
    local code=0
    "${bench}" --workloads vvmul,fir --machines vliw2 \
        --algorithms uas,convergent --jobs 4 --quiet --no-timings \
        --isolate --deadline-ms 2000 --json "${tmp}/report.json" \
        --inject 'worker.crash=fail:match=fir/vliw2/uas;worker.hang=fail:match=vvmul/vliw2/convergent' \
        || code=$?
    if [ "${code}" -ne 1 ]; then
        echo "containment: expected exit 1 (contained job failures)," \
             "got ${code}" >&2
        exit 1
    fi
    grep -q '"error": "worker-crashed"' "${tmp}/report.json" || {
        echo "containment: segfaulted cell not marked worker-crashed" >&2
        exit 1
    }
    grep -q '"error": "worker-killed"' "${tmp}/report.json" || {
        echo "containment: hung cell not marked worker-killed" >&2
        exit 1
    }
    if [ "$(grep -c '"outcome": "ok"' "${tmp}/report.json")" -ne 2 ]; then
        echo "containment: healthy cells were not salvaged" >&2
        exit 1
    fi
    rm -rf "${tmp}"
    echo "=== containment ok (crash + hang contained, healthy cells salvaged)"
}

run_suite "${prefix}-plain"
run_suite "${prefix}-tsan" -DCSCHED_SANITIZE=thread
run_tier2_asan "${prefix}-asan"
run_tier2_ubsan "${prefix}-ubsan"
kill_resume_smoke "${prefix}-plain"
containment_smoke "${prefix}-plain"
perf_gate "${prefix}-plain"

echo "=== all suites passed (plain + tsan + asan/ubsan tier2 + smokes + perf gate)"
