#!/usr/bin/env bash
# Full verification sweep: build and run the whole test suite twice --
# a plain build, then a ThreadSanitizer build (which is what proves the
# thread pool's exception barrier and the runner's determinism
# machinery are actually race-free, not just lucky).
#
#   tools/ci.sh [BUILD_DIR_PREFIX]
#
# Exits non-zero on the first failing step.

set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"

run_suite() {
    local build_dir="$1"
    shift
    echo "=== configure ${build_dir} ($*)"
    cmake -B "${build_dir}" -S . "$@" >/dev/null
    echo "=== build ${build_dir}"
    cmake --build "${build_dir}" -j >/dev/null
    echo "=== tier1 ${build_dir}"
    ctest --test-dir "${build_dir}" -L tier1 -j --output-on-failure
    echo "=== tier2 ${build_dir}"
    ctest --test-dir "${build_dir}" -L tier2 -j --output-on-failure
}

run_suite "${prefix}-plain"
run_suite "${prefix}-tsan" -DCSCHED_SANITIZE=thread

echo "=== all suites passed (plain + tsan)"
