/**
 * @file
 * Remote worker daemon for distributed grid execution (see
 * dist/workerd.hh for the architecture and DESIGN.md section 13 for
 * the distributed failure-mode matrix).
 *
 *   csched_workerd [options]
 *     --host ADDR          numeric address to bind (default 127.0.0.1)
 *     --port N             TCP port; 0 binds an ephemeral port
 *                          (default 0)
 *     --port-file PATH     write the bound port here (atomically, one
 *                          decimal line) once listening -- how shell
 *                          harnesses discover an ephemeral port
 *     --workers N          worker processes to pre-fork (default:
 *                          hardware concurrency)
 *     --mem-limit-mb N     RLIMIT_AS per worker; 0 = none
 *     --send-timeout-ms N  per-reply write budget against stalled
 *                          clients (default 5000)
 *     --max-frame-bytes N  refuse frames longer than this
 *                          (default 8 MiB)
 *     --verbose            lifecycle lines on stderr
 *     --version            print build provenance JSON and exit
 *
 * Signals: the first SIGINT/SIGTERM/SIGHUP drains -- stop admissions,
 * close every connection (clients reassign the lost leases), give
 * in-flight jobs a short cooperative grace -- and exits 128+signum.
 * Exit codes: 0 after stop(), 1 for runtime failures (bind), 2 for
 * usage errors.  (A hidden --inject RULES option arms the fault
 * harness, including the deterministic workerd.crash point that dies
 * by SIGKILL -- the reproducible daemon crash used by tests and CI.)
 */

#include <csignal>
#include <iostream>
#include <string>

#include <sys/prctl.h>

#include "dist/workerd.hh"
#include "runner/shutdown.hh"
#include "support/fault_injection.hh"
#include "tool_version.hh"

namespace {

using namespace csched;

[[noreturn]] void
usage(const char *argv0, const std::string &why = "")
{
    if (!why.empty())
        std::cerr << argv0 << ": " << why << "\n";
    std::cerr << "usage: " << argv0
              << " [--host ADDR] [--port N] [--port-file PATH]\n"
              << "  [--workers N] [--mem-limit-mb N]"
              << " [--send-timeout-ms N]\n"
              << "  [--max-frame-bytes N] [--verbose] [--version]\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    WorkerdOptions options;
    FaultPlan fault_plan;

    for (int k = 1; k < argc; ++k) {
        const std::string arg = argv[k];
        auto next = [&]() -> std::string {
            if (k + 1 >= argc)
                usage(argv[0], arg + " needs a value");
            return argv[++k];
        };
        auto nextInt = [&]() -> int {
            const std::string text = next();
            try {
                std::size_t used = 0;
                const int value = std::stoi(text, &used);
                if (used != text.size() || value < 0)
                    throw std::invalid_argument(text);
                return value;
            } catch (...) {
                usage(argv[0], arg +
                                   " expects a non-negative integer, "
                                   "got '" +
                                   text + "'");
            }
        };
        if (arg == "--version") {
            return printToolVersion("csched_workerd");
        } else if (arg == "--host") {
            options.host = next();
        } else if (arg == "--port") {
            const int port = nextInt();
            if (port > 65535)
                usage(argv[0], "--port must be <= 65535");
            options.port = static_cast<uint16_t>(port);
        } else if (arg == "--port-file") {
            options.portFile = next();
        } else if (arg == "--workers") {
            options.workers = nextInt();
        } else if (arg == "--mem-limit-mb") {
            options.memLimitMb = nextInt();
        } else if (arg == "--send-timeout-ms") {
            options.sendTimeoutMs = nextInt();
        } else if (arg == "--max-frame-bytes") {
            options.maxFrameBytes = static_cast<uint32_t>(nextInt());
        } else if (arg == "--verbose") {
            options.verbose = true;
        } else if (arg == "--inject") {
            std::string why;
            auto parsed = FaultPlan::parse(next(), &why);
            if (!parsed.has_value())
                usage(argv[0], "--inject: " + why);
            fault_plan = std::move(*parsed);
        } else {
            usage(argv[0], "unknown option '" + arg + "'");
        }
    }
    if (!fault_plan.empty())
        options.faults = &fault_plan;

    // A workerd orphaned by its launching harness must not linger and
    // hold the port (CI forks fleets of these).
    prctl(PR_SET_PDEATHSIG, SIGKILL);

    // Serve-style drain: the first signal stops admissions and closes
    // connections; lease reassignment on the clients does the healing.
    installServeSignalHandlers();

    WorkerdServer server(std::move(options));
    const Status started = server.start();
    if (!started.ok()) {
        std::cerr << argv[0] << ": " << started.toString() << "\n";
        return 1;
    }
    return server.run();
}
