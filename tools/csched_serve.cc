/**
 * @file
 * Scheduler-as-a-service daemon (see serve/server.hh for the
 * architecture and DESIGN.md section 11 for the failure-mode matrix).
 *
 *   csched_serve --socket PATH [options]
 *     --socket PATH            UNIX-domain socket to listen on
 *                              (required; stale socket files from a
 *                              previous run are replaced)
 *     --workers N              pre-forked worker processes (default 2)
 *     --dispatchers N          dispatcher threads (default 2)
 *     --queue N                admission-queue capacity (default 64);
 *                              a full queue refuses with `overloaded`
 *     --cache N                result-cache entries (default 128;
 *                              0 disables memoization)
 *     --deadline-ms N          default end-to-end deadline for
 *                              requests without one (default 10000;
 *                              0 = none)
 *     --retries N              per-request retry budget (default 1)
 *     --mem-limit-mb N         RLIMIT_AS per worker; 0 = none
 *     --max-frame-bytes N      refuse request frames longer than this
 *                              (default 1 MiB)
 *     --send-timeout-ms N      per-reply write budget against slow
 *                              clients (default 2000)
 *     --drain-deadline-ms N    in-flight grace on SIGINT/SIGTERM/
 *                              SIGHUP before escalating (default 2000)
 *     --crash-loop-threshold N consecutive worker deaths that trip
 *                              the degraded window (default 3)
 *     --degrade-cooldown-ms N  degraded-window length (default 1000)
 *     --no-timings             omit wall-clock fields from replies
 *     --verbose                lifecycle lines on stderr
 *     --version                print build provenance JSON and exit
 *
 * Signals: the first SIGINT/SIGTERM/SIGHUP starts a graceful drain
 * (stop admissions, finish in-flight work, answer the backlog with
 * `interrupted`), a second one kills the process immediately.  Exit
 * codes: 128+signum after a signal-driven drain, 1 for runtime
 * failures (bad socket path), 2 for usage errors.  (A hidden --inject
 * RULES option arms the fault harness, including the serve.accept /
 * serve.admit / serve.reply points.)
 */

#include <iostream>
#include <string>

#include "runner/shutdown.hh"
#include "serve/server.hh"
#include "support/fault_injection.hh"
#include "tool_version.hh"

namespace {

using namespace csched;

[[noreturn]] void
usage(const char *argv0, const std::string &why = "")
{
    if (!why.empty())
        std::cerr << argv0 << ": " << why << "\n";
    std::cerr
        << "usage: " << argv0 << " --socket PATH [--workers N]"
        << " [--dispatchers N] [--queue N]\n"
        << "  [--cache N] [--deadline-ms N] [--retries N]"
        << " [--mem-limit-mb N]\n"
        << "  [--max-frame-bytes N] [--send-timeout-ms N]"
        << " [--drain-deadline-ms N]\n"
        << "  [--crash-loop-threshold N] [--degrade-cooldown-ms N]"
        << " [--no-timings]\n"
        << "  [--verbose] [--version]\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    ServeOptions options;
    FaultPlan fault_plan;

    for (int k = 1; k < argc; ++k) {
        const std::string arg = argv[k];
        auto next = [&]() -> std::string {
            if (k + 1 >= argc)
                usage(argv[0], arg + " needs a value");
            return argv[++k];
        };
        auto nextInt = [&]() -> int {
            const std::string text = next();
            try {
                std::size_t used = 0;
                const int value = std::stoi(text, &used);
                if (used != text.size() || value < 0)
                    throw std::invalid_argument(text);
                return value;
            } catch (...) {
                usage(argv[0], arg +
                                   " expects a non-negative integer, "
                                   "got '" +
                                   text + "'");
            }
        };
        if (arg == "--version") {
            return printToolVersion("csched_serve");
        } else if (arg == "--socket") {
            options.socketPath = next();
        } else if (arg == "--workers") {
            options.workers = nextInt();
        } else if (arg == "--dispatchers") {
            options.dispatchers = nextInt();
        } else if (arg == "--queue") {
            options.queueCapacity =
                static_cast<std::size_t>(nextInt());
        } else if (arg == "--cache") {
            options.cacheCapacity =
                static_cast<std::size_t>(nextInt());
        } else if (arg == "--deadline-ms") {
            options.defaultDeadlineMs = nextInt();
        } else if (arg == "--retries") {
            options.retries = nextInt();
        } else if (arg == "--mem-limit-mb") {
            options.memLimitMb = nextInt();
        } else if (arg == "--max-frame-bytes") {
            options.maxFrameBytes =
                static_cast<uint32_t>(nextInt());
        } else if (arg == "--send-timeout-ms") {
            options.sendTimeoutMs = nextInt();
        } else if (arg == "--drain-deadline-ms") {
            options.drainDeadlineMs = nextInt();
        } else if (arg == "--crash-loop-threshold") {
            options.crashLoopThreshold = nextInt();
        } else if (arg == "--degrade-cooldown-ms") {
            options.degradeCooldownMs = nextInt();
        } else if (arg == "--no-timings") {
            options.timings = false;
        } else if (arg == "--verbose") {
            options.verbose = true;
        } else if (arg == "--inject") {
            std::string why;
            auto parsed = FaultPlan::parse(next(), &why);
            if (!parsed.has_value())
                usage(argv[0], "--inject: " + why);
            fault_plan = std::move(*parsed);
        } else {
            usage(argv[0], "unknown option '" + arg + "'");
        }
    }
    if (options.socketPath.empty())
        usage(argv[0], "--socket is required");
    if (options.workers < 1)
        usage(argv[0], "--workers must be >= 1");
    if (options.dispatchers < 1)
        usage(argv[0], "--dispatchers must be >= 1");
    if (!fault_plan.empty())
        options.faults = &fault_plan;

    // Serve-style drain: the first signal only stops admissions;
    // cancellation is armed later, at the drain deadline.
    installServeSignalHandlers();

    Server server(std::move(options));
    const Status started = server.start();
    if (!started.ok()) {
        std::cerr << argv[0] << ": " << started.toString() << "\n";
        return 1;
    }
    return server.run();
}
