/**
 * @file
 * Command-line driver: schedule any built-in workload on any machine
 * with any algorithm and inspect the result.
 *
 *   csched_cli [options]
 *     --workload NAME     benchmark to schedule (default tomcatv;
 *                         "list" prints the registry)
 *     --machine SPEC      vliwN | rawRxC | rawN (default vliw4)
 *     --algorithm NAME    convergent | uas | pcc | rawcc (default
 *                         convergent)
 *     --sequence PASSES   custom convergent pass list, e.g.
 *                         "INITTIME,PLACE,PLACEPROP,COMM,EMPHCP"
 *     --gantt             print the per-FU timeline
 *     --placements        print one line per instruction
 *     --trace             print the convergence trace
 *     --dot FILE          write the coloured dependence graph (DOT)
 *     --pressure          print register-pressure stats
 *     --speedup           also compute speedup vs one cluster
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "convergent/sequences.hh"
#include "eval/experiment.hh"
#include "eval/speedup.hh"
#include "ir/dot_export.hh"
#include "machine/clustered_vliw.hh"
#include "machine/raw_machine.hh"
#include "sched/register_pressure.hh"
#include "sched/schedule_printer.hh"
#include "support/str.hh"
#include "workloads/workloads.hh"

using namespace csched;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--workload NAME] [--machine vliwN|rawRxC]"
              << " [--algorithm convergent|uas|pcc|rawcc]\n"
              << "  [--sequence PASSES] [--gantt] [--placements]"
              << " [--trace] [--dot FILE] [--pressure] [--speedup]\n";
    std::exit(2);
}

std::unique_ptr<MachineModel>
parseMachine(const std::string &spec)
{
    if (spec.rfind("vliw", 0) == 0)
        return std::make_unique<ClusteredVliwMachine>(
            std::stoi(spec.substr(4)));
    if (spec.rfind("raw", 0) == 0) {
        const std::string dims = spec.substr(3);
        const auto x = dims.find('x');
        if (x == std::string::npos) {
            return std::make_unique<RawMachine>(
                RawMachine::withTiles(std::stoi(dims)));
        }
        return std::make_unique<RawMachine>(
            std::stoi(dims.substr(0, x)), std::stoi(dims.substr(x + 1)));
    }
    std::cerr << "unknown machine spec '" << spec << "'\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "tomcatv";
    std::string machine_spec = "vliw4";
    std::string algorithm_name = "convergent";
    std::string sequence;
    std::string dot_file;
    bool want_gantt = false;
    bool want_placements = false;
    bool want_trace = false;
    bool want_pressure = false;
    bool want_speedup = false;

    for (int k = 1; k < argc; ++k) {
        const std::string arg = argv[k];
        auto next = [&]() -> std::string {
            if (k + 1 >= argc)
                usage(argv[0]);
            return argv[++k];
        };
        if (arg == "--workload") {
            workload = next();
        } else if (arg == "--machine") {
            machine_spec = next();
        } else if (arg == "--algorithm") {
            algorithm_name = next();
        } else if (arg == "--sequence") {
            sequence = next();
        } else if (arg == "--dot") {
            dot_file = next();
        } else if (arg == "--gantt") {
            want_gantt = true;
        } else if (arg == "--placements") {
            want_placements = true;
        } else if (arg == "--trace") {
            want_trace = true;
        } else if (arg == "--pressure") {
            want_pressure = true;
        } else if (arg == "--speedup") {
            want_speedup = true;
        } else {
            usage(argv[0]);
        }
    }

    if (workload == "list") {
        for (const auto &spec : allWorkloads())
            std::cout << spec.name << "  -  " << spec.description
                      << "\n";
        return 0;
    }

    const auto machine = parseMachine(machine_spec);
    const auto &spec = findWorkload(workload);
    const auto graph = spec.build(machine->numClusters(),
                                  machine->numClusters());

    std::unique_ptr<SchedulingAlgorithm> algorithm;
    const ConvergentAlgorithm *convergent = nullptr;
    if (algorithm_name == "convergent") {
        auto conv =
            sequence.empty()
                ? std::make_unique<ConvergentAlgorithm>(*machine)
                : std::make_unique<ConvergentAlgorithm>(*machine,
                                                        sequence);
        convergent = conv.get();
        algorithm = std::move(conv);
    } else if (algorithm_name == "uas") {
        algorithm = makeAlgorithm(AlgorithmKind::Uas, *machine);
    } else if (algorithm_name == "pcc") {
        algorithm = makeAlgorithm(AlgorithmKind::Pcc, *machine);
    } else if (algorithm_name == "rawcc") {
        algorithm = makeAlgorithm(AlgorithmKind::Rawcc, *machine);
    } else {
        usage(argv[0]);
    }

    const auto run = runAndCheck(*algorithm, graph, *machine);
    std::cout << workload << " on " << machine->name() << " via "
              << algorithm->name() << ": " << run.instructions
              << " instructions, makespan " << run.makespan
              << " cycles (CPL " << graph.criticalPathLength()
              << "), scheduled in " << formatDouble(run.seconds * 1e3, 2)
              << " ms\n";

    const auto schedule = algorithm->run(graph);

    if (want_speedup) {
        std::cout << "speedup vs one cluster: "
                  << formatDouble(speedupOf(spec, *machine, *algorithm),
                                  2)
                  << "x\n";
    }
    if (want_pressure) {
        const auto report = analyzePressure(graph, schedule);
        std::cout << "peak register pressure: " << report.peak()
                  << " (budget " << machine->registersPerCluster()
                  << "; clusters over budget: "
                  << report.clustersOverBudget(
                         machine->registersPerCluster())
                  << ")\n";
    }
    if (want_trace && convergent != nullptr) {
        for (const auto &step : convergent->runFull(graph).trace)
            std::cout << "  " << step.pass << ": "
                      << formatDouble(step.fractionChanged, 3)
                      << (step.temporalOnly ? " (temporal)" : "")
                      << "\n";
    }
    if (want_gantt) {
        std::cout << "\n";
        printGantt(std::cout, graph, *machine, schedule);
    }
    if (want_placements) {
        std::cout << "\n";
        printPlacements(std::cout, graph, schedule);
    }
    if (!dot_file.empty()) {
        std::ofstream out(dot_file);
        exportDot(out, graph, schedule.assignment());
        std::cout << "wrote " << dot_file << "\n";
    }
    return 0;
}
