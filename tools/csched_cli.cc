/**
 * @file
 * Command-line driver: schedule any built-in workload on any machine
 * with any algorithm and inspect the result.
 *
 *   csched_cli [options]
 *     --workload NAME     benchmark to schedule (default tomcatv;
 *                         "list" prints the registry)
 *     --machine SPEC      vliwN | rawN | rawRxC | single (default
 *                         vliw4); malformed specs are rejected
 *     --algorithm SPEC    convergent | uas | pcc | rawcc | single |
 *                         bug, optionally with a pass sequence as in
 *                         "convergent:INITTIME,PLACE,COMM" (default
 *                         convergent)
 *     --sequence PASSES   custom convergent pass list (equivalent to
 *                         the --algorithm suffix form)
 *     --json FILE         write the structured run report ("-" =
 *                         stdout)
 *     --jobs N            worker threads for the --json report path
 *                         (0 = hardware concurrency)
 *     --gantt             print the per-FU timeline
 *     --placements        print one line per instruction
 *     --trace             print the convergence trace
 *     --dot FILE          write the coloured dependence graph (DOT)
 *     --pressure          print register-pressure stats
 *     --speedup           also compute speedup vs one cluster
 *     --deadline-ms N     per-attempt deadline; 0 = none
 *     --retries N         retry a failed/timed-out run up to N times
 *     --isolate           (with --json) run the job in a forked
 *                         worker process so a crash/hang/OOM becomes
 *                         a recorded outcome, not a process death
 *     --mem-limit-mb N    RLIMIT_AS per isolated worker; 0 = none
 *     --journal FILE      (with --json) append terminal job outcomes
 *                         to FILE as they complete
 *     --resume            (with --journal) replay journaled outcomes
 *                         instead of re-running those jobs
 *     --hosts CSV         (with --json) execute jobs on a fleet of
 *                         csched_workerd daemons, "host:port" each;
 *                         partition-tolerant (see dist/remote_pool.hh)
 *                         and byte-identical to an in-process run
 *     --keep-going        exit 0 even when the run (or a grid job)
 *                         failed
 *
 * Online mode (see online/online_grid.hh) sweeps arrival streams
 * instead of single workloads; it shares --json/--jobs/--journal/
 * --resume/--isolate and the execution knobs above:
 *     --online            run a (stream x machine x policy) sweep
 *     --streams CSV       stream specs, e.g.
 *                         stream:poisson:n=12:seed=1:mean-gap=500:
 *                         workloads=fir+vvmul (specs are comma-free)
 *     --machines CSV      machine specs for the sweep
 *     --policies CSV      online policies (default: all five)
 *     --emit-trace FILE   also write the streams' csched-stream-v1
 *                         JSONL traces (replay with stream:trace:
 *                         file=FILE when sweeping a single stream)
 *
 * Failures are structured: a bad spec is a usage error (exit 2), while
 * a run that fails -- checker rejection, deadline, injected fault --
 * prints a diagnostic and exits 1 unless --keep-going.  SIGINT/SIGTERM
 * stop the run gracefully and exit 128+signum; file outputs (--json,
 * --dot) are atomic (tmp + fsync + rename).  (A hidden --inject RULES
 * option arms the deterministic fault-injection harness; see
 * fault_injection.hh.)
 */

#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "dist/remote_pool.hh"
#include "eval/experiment.hh"
#include "eval/speedup.hh"
#include "ir/dot_export.hh"
#include "machine/machine_spec.hh"
#include "online/arrival.hh"
#include "online/online_grid.hh"
#include "runner/failure_summary.hh"
#include "runner/grid_runner.hh"
#include "runner/json_report.hh"
#include "tool_version.hh"
#include "runner/shutdown.hh"
#include "sched/register_pressure.hh"
#include "sched/schedule_printer.hh"
#include "support/atomic_file.hh"
#include "support/cancel.hh"
#include "support/fault_injection.hh"
#include "support/str.hh"
#include "workloads/workloads.hh"

using namespace csched;

namespace {

[[noreturn]] void
usage(const char *argv0, const std::string &why = "")
{
    if (!why.empty())
        std::cerr << argv0 << ": " << why << "\n";
    std::cerr << "usage: " << argv0
              << " [--workload NAME] [--machine vliwN|rawN|rawRxC]"
              << " [--algorithm SPEC]\n"
              << "  [--sequence PASSES] [--json FILE] [--jobs N]"
              << " [--gantt] [--placements]\n"
              << "  [--trace] [--dot FILE] [--pressure] [--speedup]\n"
              << "  [--deadline-ms N] [--retries N] [--isolate]"
              << " [--mem-limit-mb N]\n"
              << "  [--journal FILE] [--resume] [--hosts CSV]"
              << " [--keep-going] [--version]\n"
              << "  [--online [--streams CSV] [--machines CSV]"
              << " [--policies CSV] [--emit-trace FILE]]\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "tomcatv";
    std::string machine_spec = "vliw4";
    std::string algorithm_arg = "convergent";
    std::string sequence;
    std::string dot_file;
    std::string json_file;
    std::string journal_file;
    bool resume = false;
    int jobs = 1;
    int deadline_ms = 0;
    int retries = 0;
    bool isolate = false;
    int mem_limit_mb = 0;
    std::string hosts_csv;
    DistOptions dist_options;
    bool keep_going = false;
    bool online = false;
    std::string streams_csv =
        "stream:poisson:n=12:seed=1:mean-gap=500:workloads=fir+vvmul+"
        "jacobi";
    std::string machines_csv = "vliw4";
    std::string policies_csv = "online-convergent,online-sp,online-list,"
                               "online-uas,online-pcc";
    std::string trace_file;
    FaultPlan fault_plan;
    bool want_gantt = false;
    bool want_placements = false;
    bool want_trace = false;
    bool want_pressure = false;
    bool want_speedup = false;

    for (int k = 1; k < argc; ++k) {
        const std::string arg = argv[k];
        auto next = [&]() -> std::string {
            if (k + 1 >= argc)
                usage(argv[0], arg + " needs a value");
            return argv[++k];
        };
        if (arg == "--version") {
            return printToolVersion("csched_cli");
        } else if (arg == "--workload") {
            workload = next();
        } else if (arg == "--machine") {
            machine_spec = next();
        } else if (arg == "--algorithm") {
            algorithm_arg = next();
        } else if (arg == "--sequence") {
            sequence = next();
        } else if (arg == "--json") {
            json_file = next();
        } else if (arg == "--jobs" || arg == "--deadline-ms" ||
                   arg == "--retries" || arg == "--mem-limit-mb") {
            const std::string text = next();
            int parsed = 0;
            try {
                parsed = std::stoi(text);
            } catch (...) {
                usage(argv[0], arg + " expects an integer, got '" +
                                   text + "'");
            }
            if (parsed < 0)
                usage(argv[0], arg + " must be >= 0");
            (arg == "--jobs"          ? jobs
             : arg == "--deadline-ms" ? deadline_ms
             : arg == "--retries"     ? retries
                                      : mem_limit_mb) = parsed;
        } else if (arg == "--isolate") {
            isolate = true;
        } else if (arg == "--journal") {
            journal_file = next();
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--hosts") {
            hosts_csv = next();
        } else if (arg == "--dist-opts") {
            // Hidden: dist-client timing overrides for tests and CI
            // (see DistOptions::applyOverrides).
            const Status applied =
                DistOptions::applyOverrides(&dist_options, next());
            if (!applied.ok())
                usage(argv[0], "--dist-opts: " + applied.message());
        } else if (arg == "--keep-going") {
            keep_going = true;
        } else if (arg == "--online") {
            online = true;
        } else if (arg == "--streams") {
            streams_csv = next();
        } else if (arg == "--machines") {
            machines_csv = next();
        } else if (arg == "--policies") {
            policies_csv = next();
        } else if (arg == "--emit-trace") {
            trace_file = next();
        } else if (arg == "--inject") {
            // Hidden: deterministic fault injection for the
            // robustness tests (see fault_injection.hh).
            std::string why;
            const auto parsed_plan = FaultPlan::parse(next(), &why);
            if (!parsed_plan.has_value())
                usage(argv[0], "--inject: " + why);
            fault_plan = *parsed_plan;
        } else if (arg == "--dot") {
            dot_file = next();
        } else if (arg == "--gantt") {
            want_gantt = true;
        } else if (arg == "--placements") {
            want_placements = true;
        } else if (arg == "--trace") {
            want_trace = true;
        } else if (arg == "--pressure") {
            want_pressure = true;
        } else if (arg == "--speedup") {
            want_speedup = true;
        } else {
            usage(argv[0], "unknown option '" + arg + "'");
        }
    }

    if (workload == "list") {
        for (const auto &spec : allWorkloads())
            std::cout << spec.name << "  -  " << spec.description
                      << "\n";
        return 0;
    }

    if (resume && journal_file.empty())
        usage(argv[0], "--resume requires --journal");
    if (!journal_file.empty() && json_file.empty())
        usage(argv[0], "--journal requires --json (it journals the "
                       "structured run)");
    if (!hosts_csv.empty() && json_file.empty())
        usage(argv[0], "--hosts requires --json (remote execution "
                       "runs the structured grid)");
    if (!hosts_csv.empty() && isolate)
        usage(argv[0], "--hosts and --isolate are mutually exclusive "
                       "(remote hosts already isolate every job)");

    installGridSignalHandlers();

    if (online) {
        OnlineGridSpec sweep;
        sweep.streams = split(streams_csv, ',');
        // splitMachineList, not a bare split: faults= suffixes carry
        // commas of their own.
        sweep.machines = splitMachineList(machines_csv);
        sweep.policies = split(policies_csv, ',');
        sweep.jobs = jobs;
        sweep.deadlineMs = deadline_ms;
        sweep.retries = retries;
        sweep.journalPath = journal_file;
        sweep.resume = resume;
        sweep.isolate = isolate;
        sweep.memLimitMb = mem_limit_mb;
        if (!fault_plan.empty())
            sweep.faults = &fault_plan;
        auto grid = makeOnlineGrid(sweep);
        if (!grid.ok())
            usage(argv[0], grid.status().message());
        if (!hosts_csv.empty()) {
            grid->hosts = split(hosts_csv, ',');
            grid->dist = &dist_options;
        }

        if (!trace_file.empty()) {
            std::string traces;
            for (const std::string &stream : sweep.streams) {
                const auto parsed_stream = parseStreamSpec(stream);
                auto arrivals = generateArrivals(*parsed_stream);
                if (!arrivals.ok()) {
                    std::cerr << argv[0] << ": "
                              << arrivals.status().toString() << "\n";
                    return 1;
                }
                traces += streamTraceText(*parsed_stream, *arrivals);
            }
            const Status written = writeFileAtomic(trace_file, traces);
            if (!written.ok()) {
                std::cerr << argv[0] << ": " << written.toString()
                          << "\n";
                return 1;
            }
            std::cout << "wrote " << trace_file << "\n";
        }

        const GridReport report = runGrid(*grid);
        if (json_file.empty() || json_file == "-") {
            for (const auto &job : report.results) {
                std::cout << job.workload << " on " << job.machine
                          << " via " << job.algorithm << ": ";
                if (!job.ok()) {
                    std::cout << jobOutcomeName(job.outcome) << " ("
                              << job.diagnostic << ")\n";
                    continue;
                }
                std::cout << job.regions << " regions, weighted "
                          << "completion " << job.weightedCompletion
                          << ", makespan " << job.makespan
                          << ", max flow " << job.maxFlowTime
                          << ", mean flow "
                          << formatDouble(job.meanFlowTime, 1)
                          << ", misses " << job.deadlineMisses
                          << ", preemptions " << job.preemptions
                          << "\n";
            }
        }
        if (!json_file.empty()) {
            if (json_file == "-") {
                writeGridReport(std::cout, report);
            } else {
                FaultScope report_faults(sweep.faults, "report");
                ScopedFaultScope report_fault_guard(&report_faults);
                const Status written = writeFileAtomic(
                    json_file, gridReportToJson(report));
                if (!written.ok()) {
                    std::cerr << argv[0] << ": " << written.toString()
                              << "\n";
                    return 1;
                }
                std::cout << "wrote " << json_file << "\n";
            }
        }
        printFailureSummary(std::cerr, report);
        return gridExitCode(report, keep_going);
    }

    std::string error;
    const auto machine = parseMachineSpec(machine_spec, &error);
    if (machine == nullptr)
        usage(argv[0], error);

    auto parsed = parseAlgorithmSpec(algorithm_arg, &error);
    if (!parsed.has_value())
        usage(argv[0], error);
    AlgorithmSpec algorithm_spec = *parsed;
    if (!sequence.empty()) {
        if (!algorithm_spec.sequence.empty())
            usage(argv[0], "--sequence conflicts with the --algorithm "
                           "pass suffix");
        algorithm_spec.sequence = sequence;
        parsed = parseAlgorithmSpec(algorithm_spec.text(), &error);
        if (!parsed.has_value())
            usage(argv[0], error);
        algorithm_spec = *parsed;
    }

    const WorkloadSpec *found = tryFindWorkload(workload);
    if (found == nullptr)
        usage(argv[0], "unknown workload '" + workload +
                           "' (try --workload list)");
    const auto &spec = *found;
    auto graph = spec.build(machine->numClusters(),
                            machine->numClusters());
    remapPreplacedForMachine(graph, *machine);

    // The interactive run is one "job": same fault scope key, deadline,
    // and bounded-retry loop as a grid cell (see runner/job.hh), but
    // keeping the Schedule object for the inspection flags below.
    FaultScope faults(fault_plan.empty() ? nullptr : &fault_plan,
                      workload + "/" + machine_spec + "/" +
                          algorithm_spec.text());
    ScopedFaultScope fault_guard(&faults);

    auto attemptRun = [&]() -> StatusOr<RunResult> {
        try {
            CancelToken token;
            if (deadline_ms > 0)
                token.armDeadline(deadline_ms);
            ScopedCancelToken cancel_guard(&token);
            checkpoint("runner.job.start");
            auto algorithm = tryMakeAlgorithm(algorithm_spec, *machine);
            if (!algorithm.ok())
                return algorithm.status();
            return tryRunAndCheck(**algorithm, graph, *machine);
        } catch (const StatusError &error) {
            return error.status;
        }
    };
    auto run = attemptRun();
    int attempts = 1;
    while (!run.ok() && run.status().code() != ErrorCode::InvalidSpec &&
           run.status().code() != ErrorCode::Interrupted &&
           attempts <= retries) {
        ++attempts;
        run = attemptRun();
    }
    if (!run.ok()) {
        std::cerr << argv[0] << ": " << workload << " on "
                  << machine_spec << " failed after " << attempts
                  << (attempts == 1 ? " attempt: " : " attempts: ")
                  << run.status().toString() << "\n";
        if (run.status().code() == ErrorCode::Interrupted)
            return interruptExitCode(interruptSignal());
        return keep_going ? 0 : 1;
    }
    const Schedule &schedule = run->result.schedule;

    std::cout << workload << " on " << machine->name() << " via "
              << run->algorithm << ": " << run->instructions
              << " instructions, makespan " << run->makespan
              << " cycles (CPL " << graph.criticalPathLength()
              << "), scheduled in "
              << formatDouble(run->seconds * 1e3, 2) << " ms\n";

    if (want_speedup) {
        const auto base = trySingleClusterMakespan(spec, *machine);
        if (!base.ok()) {
            std::cerr << argv[0] << ": " << base.status().toString()
                      << "\n";
            return keep_going ? 0 : 1;
        }
        std::cout << "speedup vs one cluster: "
                  << formatDouble(static_cast<double>(*base) /
                                      static_cast<double>(run->makespan),
                                  2)
                  << "x\n";
    }
    if (want_pressure) {
        const auto report = analyzePressure(graph, schedule);
        std::cout << "peak register pressure: " << report.peak()
                  << " (budget " << machine->registersPerCluster()
                  << "; clusters over budget: "
                  << report.clustersOverBudget(
                         machine->registersPerCluster())
                  << ")\n";
    }
    if (want_trace) {
        if (run->result.trace.empty())
            std::cout << "(no convergence trace: " << run->algorithm
                      << " has no pass pipeline)\n";
        for (const auto &step : run->result.trace)
            std::cout << "  " << step.pass << ": "
                      << formatDouble(step.fractionChanged, 3)
                      << (step.temporalOnly ? " (temporal)" : "")
                      << "  [" << formatDouble(step.seconds * 1e3, 2)
                      << " ms]\n";
    }
    if (want_gantt) {
        std::cout << "\n";
        printGantt(std::cout, graph, *machine, schedule);
    }
    if (want_placements) {
        std::cout << "\n";
        printPlacements(std::cout, graph, schedule);
    }
    if (!dot_file.empty()) {
        std::ostringstream out;
        exportDot(out, graph, schedule.assignment());
        const Status written = writeFileAtomic(dot_file, out.str());
        if (!written.ok()) {
            std::cerr << argv[0] << ": " << written.toString() << "\n";
            return 1;
        }
        std::cout << "wrote " << dot_file << "\n";
    }
    if (!json_file.empty()) {
        GridSpec grid;
        grid.workloads = {workload};
        grid.machines = {machine_spec};
        grid.algorithms = {algorithm_spec};
        grid.jobs = jobs;
        grid.computeSpeedup = want_speedup;
        grid.deadlineMs = deadline_ms;
        grid.retries = retries;
        grid.journalPath = journal_file;
        grid.resume = resume;
        grid.isolate = isolate;
        grid.memLimitMb = mem_limit_mb;
        if (!hosts_csv.empty()) {
            grid.hosts = split(hosts_csv, ',');
            grid.dist = &dist_options;
        }
        if (!fault_plan.empty())
            grid.faults = &fault_plan;
        const GridReport report = runGrid(grid);
        if (json_file == "-") {
            writeGridReport(std::cout, report);
        } else {
            FaultScope report_faults(grid.faults, "report");
            ScopedFaultScope report_fault_guard(&report_faults);
            const Status written =
                writeFileAtomic(json_file, gridReportToJson(report));
            if (!written.ok()) {
                std::cerr << argv[0] << ": " << written.toString()
                          << "\n";
                return 1;
            }
            std::cout << "wrote " << json_file << "\n";
        }
        printFailureSummary(std::cerr, report);
        return gridExitCode(report, keep_going);
    }
    return 0;
}
