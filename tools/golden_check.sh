#!/bin/sh
# golden_check.sh BINARY GOLDEN -- run BINARY, compare its stdout
# byte-for-byte against the checked-in GOLDEN file, and print a diff
# on mismatch.  Used by the tier-2 golden tests to pin the paper
# figures/tables to the pre-rewrite preference-matrix engine: any
# numerical drift in the matrix kernels shows up here first.
set -u

if [ $# -ne 2 ]; then
    echo "usage: $0 BINARY GOLDEN" >&2
    exit 2
fi

binary=$1
golden=$2

if [ ! -x "$binary" ]; then
    echo "golden_check: binary '$binary' not found or not executable" >&2
    exit 2
fi
if [ ! -f "$golden" ]; then
    echo "golden_check: golden file '$golden' not found" >&2
    exit 2
fi

actual=$(mktemp "${TMPDIR:-/tmp}/golden_check.XXXXXX") || exit 1
trap 'rm -f "$actual"' EXIT

if ! "$binary" >"$actual"; then
    echo "golden_check: '$binary' failed" >&2
    exit 1
fi

if cmp -s "$actual" "$golden"; then
    echo "golden_check: $(basename "$binary") matches $(basename "$golden")"
    exit 0
fi

echo "golden_check: output of '$binary' differs from '$golden':" >&2
diff -u "$golden" "$actual" >&2
exit 1
